package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestModuleClean runs the full analyzer suite over the real module —
// including the compiler's escape analysis for allocprove and the
// //rbpc:allow staleness audit — so a plain `go test ./...` enforces the
// annotated invariants even when the lint gate is not run separately. It
// is the regression test for every first-run finding the suite has ever
// flagged: reintroducing one (an unprotected snapshot-field write, an
// allocation in a hotpath function, a lock-order inversion, a stored
// epoch-scoped snapshot, a map range in replay-critical code) fails this
// test.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module analysis in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeModuleOpts(ModuleOptions{
		Dir:         root,
		Escapes:     true,
		UnusedAllow: true,
	})
	if err != nil {
		t.Fatalf("analyzing module: %v", err)
	}
	for _, d := range res.Diags {
		t.Errorf("%s", d)
	}
	for _, a := range res.StaleAllows {
		t.Errorf("stale suppression: //rbpc:allow %s at %s suppresses nothing", a.Name, a.Site)
	}
}

// TestSortDiags pins the deterministic-diagnostics contract: output is
// ordered by position (file, line, column), ties broken by analyzer then
// message, and exact duplicates — the same finding reported by direct
// mode and again by a vet unit — collapse to one.
func TestSortDiags(t *testing.T) {
	d := func(file string, line, col int, analyzer, msg string) Diagnostic {
		return Diagnostic{
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Analyzer: analyzer,
			Message:  msg,
		}
	}
	in := []Diagnostic{
		d("b.go", 2, 1, "hotpath", "m"),
		d("a.go", 9, 3, "lockorder", "n"),
		d("a.go", 9, 3, "lockorder", "n"), // exact duplicate: dropped
		d("a.go", 9, 1, "deterministic", "q"),
		d("a.go", 9, 1, "allocprove", "q"), // same position: analyzer breaks the tie
		d("a.go", 2, 7, "hotpath", "z"),
	}
	got := SortDiags(in)
	want := []Diagnostic{
		d("a.go", 2, 7, "hotpath", "z"),
		d("a.go", 9, 1, "allocprove", "q"),
		d("a.go", 9, 1, "deterministic", "q"),
		d("a.go", 9, 3, "lockorder", "n"),
		d("b.go", 2, 1, "hotpath", "m"),
	}
	if len(got) != len(want) {
		t.Fatalf("got %d diagnostics, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// writeTempModule lays out a throwaway single-package module for
// whole-module analysis tests and returns its root.
func writeTempModule(t *testing.T, aGo string) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"a/a.go": aGo,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const cacheModSrc = `package a

import "time"

// Stamp is replay-critical.
//
//rbpc:deterministic
func Stamp() int64 {
	return time.Now().Unix()
}

//rbpc:hotpath
func Grow(xs []int) []int {
	return append(xs, 1) //rbpc:allow hotpath -- capacity preallocated by callers
}
`

const cacheModFixedSrc = `package a

// Stamp is replay-critical.
//
//rbpc:deterministic
func Stamp() int64 {
	return 0
}

//rbpc:hotpath
func Grow(xs []int) []int {
	return xs //rbpc:allow hotpath -- capacity preallocated by callers
}
`

// TestModuleCache exercises the content-hash fact cache end to end: a
// cold run computes and stores per-package facts and diagnostics, a warm
// run replays them byte-identically (including the //rbpc:allow usage
// needed by the staleness audit), and editing a source file invalidates
// exactly that package's entry so the findings track the new content.
func TestModuleCache(t *testing.T) {
	mod := writeTempModule(t, cacheModSrc)
	cacheDir := filepath.Join(t.TempDir(), "lintcache")
	opts := ModuleOptions{Dir: mod, CacheDir: cacheDir, UnusedAllow: true}

	cold, err := AnalyzeModuleOpts(opts)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if len(cold.Diags) != 1 || !strings.Contains(cold.Diags[0].Message, "wall clock") {
		t.Fatalf("cold run diags = %v, want the single time.Now finding", cold.Diags)
	}
	if len(cold.StaleAllows) != 0 {
		t.Fatalf("cold run stale allows = %v, want none (the hotpath allow is used)", cold.StaleAllows)
	}
	entries, err := os.ReadDir(cacheDir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cold run left no cache entries (err=%v)", err)
	}

	warm, err := AnalyzeModuleOpts(opts)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if len(warm.Diags) != 1 || warm.Diags[0] != cold.Diags[0] {
		t.Fatalf("warm run diags = %v, want replay of %v", warm.Diags, cold.Diags)
	}
	if len(warm.StaleAllows) != 0 {
		t.Fatalf("warm run stale allows = %v; allow usage was not replayed from the cache", warm.StaleAllows)
	}

	// Fix the violation and orphan the allow: the content hash must
	// invalidate the entry, drop the finding, and surface the stale
	// suppression.
	if err := os.WriteFile(filepath.Join(mod, "a", "a.go"), []byte(cacheModFixedSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	fixed, err := AnalyzeModuleOpts(opts)
	if err != nil {
		t.Fatalf("post-edit run: %v", err)
	}
	if len(fixed.Diags) != 0 {
		t.Fatalf("post-edit diags = %v, want none", fixed.Diags)
	}
	if len(fixed.StaleAllows) != 1 || fixed.StaleAllows[0].Name != "hotpath" {
		t.Fatalf("post-edit stale allows = %v, want the orphaned hotpath allow", fixed.StaleAllows)
	}
}
