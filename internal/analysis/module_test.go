package analysis

import (
	"path/filepath"
	"testing"
)

// TestModuleClean runs the full analyzer suite over the real module, so a
// plain `go test ./...` enforces the annotated invariants even when the
// lint gate is not run separately. It is the regression test for every
// first-run finding the suite has ever flagged: reintroducing one (an
// unprotected snapshot-field write, an allocation in a hotpath function,
// an unlocked guarded-field access, a mixed atomic/plain access) fails
// this test.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module analysis in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := AnalyzeModule(All, root, "./...")
	if err != nil {
		t.Fatalf("analyzing module: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
