package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The //rbpc:* annotation vocabulary (see DESIGN.md §10 and §15):
//
//	//rbpc:immutable            on a type declaration
//	//rbpc:epochscoped          on a type declaration (epoch-lifetime values)
//	//rbpc:hotpath              on a function declaration
//	//rbpc:deterministic        on a function declaration or package clause
//	//rbpc:ctor                 on a function allowed to build annotated types
//	//rbpc:locked               on a function whose callers hold the guard
//	//rbpc:guardedby <field>    on a struct field
//	//rbpc:allow <checks> [-- reason]   trailing on a flagged line
//
// Annotations are directive comments (no space after //), so gofmt leaves
// them alone and they are excluded from rendered documentation.

// Index is the cross-package annotation and atomic-access fact base the
// analyzers consult. Keys are universe-independent strings so the index
// survives serialization between `go vet` compilation units:
//
//	type:      pkgpath.TypeName
//	function:  pkgpath.FuncName or pkgpath.RecvTypeName.MethodName
//	field:     pkgpath.StructName.fieldName
type Index struct {
	// Immutable marks types annotated //rbpc:immutable.
	Immutable map[string]bool `json:"immutable,omitempty"`
	// EpochScoped marks types annotated //rbpc:epochscoped: values live
	// exactly one epoch and may not be stored into fields, globals, or
	// channels of unscoped types (the snapshotescape invariant).
	EpochScoped map[string]bool `json:"epochscoped,omitempty"`
	// Hotpath marks functions annotated //rbpc:hotpath.
	Hotpath map[string]bool `json:"hotpath,omitempty"`
	// Deterministic marks functions annotated //rbpc:deterministic.
	Deterministic map[string]bool `json:"deterministic,omitempty"`
	// DeterministicPkg marks whole packages whose package clause carries
	// //rbpc:deterministic: every function in them is checked.
	DeterministicPkg map[string]bool `json:"deterministicpkg,omitempty"`
	// Ctor marks functions annotated //rbpc:ctor (build-phase writers).
	Ctor map[string]bool `json:"ctor,omitempty"`
	// Locked marks functions annotated //rbpc:locked (guard held by caller).
	Locked map[string]bool `json:"locked,omitempty"`
	// Guard maps an annotated field to the name of its guarding mutex field.
	Guard map[string]string `json:"guard,omitempty"`
	// Atomic maps a raw (non-atomic-typed) field to one example position
	// where it is accessed through a sync/atomic call.
	Atomic map[string]string `json:"atomic,omitempty"`

	// Acquires maps a function to every sync.Mutex/RWMutex acquisition
	// site in its body (closures included — the function "may acquire"),
	// the raw material of the lockorder transitive closure.
	Acquires map[string][]LockSite `json:"acquires,omitempty"`
	// LockCalls maps a function to the module-local functions it calls —
	// the call edges lock acquisition flows through.
	LockCalls map[string][]string `json:"lockcalls,omitempty"`
	// LockEdges are direct nested acquisitions: Inner acquired at InnerPos
	// while Outer (acquired at OuterPos) was still held.
	LockEdges []LockEdge `json:"lockedges,omitempty"`
	// HeldCalls are module-local calls made while a guard was held; the
	// lockorder analyzer expands them against the callees' transitive
	// acquisition sets.
	HeldCalls []HeldCall `json:"heldcalls,omitempty"`

	// allow maps "filename:line" to the analyzer names a //rbpc:allow
	// comment on that line suppresses. Local to a package; not serialized.
	allow map[string][]string
	// allowUsed marks which (site, name) suppressions actually masked a
	// diagnostic, feeding the -unused-allow staleness audit.
	allowUsed map[string]map[string]bool
}

// LockSite is one mutex acquisition: the guard's index key and position.
type LockSite struct {
	Guard string `json:"guard"`
	Pos   string `json:"pos"`
}

// LockEdge is a direct acquired-while-held relation between two guards.
type LockEdge struct {
	Outer    string `json:"outer"`
	OuterPos string `json:"outerpos"`
	Inner    string `json:"inner"`
	InnerPos string `json:"innerpos"`
}

// HeldCall is a module-local call made while a guard was held.
type HeldCall struct {
	Guard    string `json:"guard"`
	GuardPos string `json:"guardpos"`
	Callee   string `json:"callee"`
	CallPos  string `json:"callpos"`
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		Immutable:        map[string]bool{},
		EpochScoped:      map[string]bool{},
		Hotpath:          map[string]bool{},
		Deterministic:    map[string]bool{},
		DeterministicPkg: map[string]bool{},
		Ctor:             map[string]bool{},
		Locked:           map[string]bool{},
		Guard:            map[string]string{},
		Atomic:           map[string]string{},
		Acquires:         map[string][]LockSite{},
		LockCalls:        map[string][]string{},
		allow:            map[string][]string{},
		allowUsed:        map[string]map[string]bool{},
	}
}

// Merge folds facts from another index (e.g. a dependency's serialized
// facts) into idx. Line suppressions are not merged: they are local to the
// package being checked.
func (idx *Index) Merge(o *Index) {
	for k := range o.Immutable {
		idx.Immutable[k] = true
	}
	for k := range o.EpochScoped {
		idx.EpochScoped[k] = true
	}
	for k := range o.Hotpath {
		idx.Hotpath[k] = true
	}
	for k := range o.Deterministic {
		idx.Deterministic[k] = true
	}
	for k := range o.DeterministicPkg {
		idx.DeterministicPkg[k] = true
	}
	for k := range o.Ctor {
		idx.Ctor[k] = true
	}
	for k := range o.Locked {
		idx.Locked[k] = true
	}
	for k, v := range o.Guard {
		idx.Guard[k] = v
	}
	for k, v := range o.Atomic {
		if _, ok := idx.Atomic[k]; !ok {
			idx.Atomic[k] = v
		}
	}
	for k, sites := range o.Acquires {
		idx.Acquires[k] = mergeLockSites(idx.Acquires[k], sites)
	}
	for k, callees := range o.LockCalls {
		idx.LockCalls[k] = mergeStrings(idx.LockCalls[k], callees)
	}
	for _, e := range o.LockEdges {
		if !containsLockEdge(idx.LockEdges, e) {
			idx.LockEdges = append(idx.LockEdges, e)
		}
	}
	for _, h := range o.HeldCalls {
		if !containsHeldCall(idx.HeldCalls, h) {
			idx.HeldCalls = append(idx.HeldCalls, h)
		}
	}
}

func mergeLockSites(dst, src []LockSite) []LockSite {
	for _, s := range src {
		dup := false
		for _, d := range dst {
			if d == s {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, s)
		}
	}
	return dst
}

func mergeStrings(dst, src []string) []string {
	for _, s := range src {
		dup := false
		for _, d := range dst {
			if d == s {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, s)
		}
	}
	return dst
}

func containsLockEdge(edges []LockEdge, e LockEdge) bool {
	for _, x := range edges {
		if x == e {
			return true
		}
	}
	return false
}

func containsHeldCall(calls []HeldCall, h HeldCall) bool {
	for _, x := range calls {
		if x == h {
			return true
		}
	}
	return false
}

// MarshalFacts serializes the shareable part of the index for a vet facts
// file.
func (idx *Index) MarshalFacts() ([]byte, error) { return json.Marshal(idx) }

// UnmarshalFacts parses a facts file produced by MarshalFacts.
func UnmarshalFacts(data []byte) (*Index, error) {
	idx := NewIndex()
	if len(data) == 0 {
		return idx, nil
	}
	if err := json.Unmarshal(data, idx); err != nil {
		return nil, err
	}
	// Maps elided by omitempty come back nil; restore invariants.
	base := NewIndex()
	base.Merge(idx)
	return base, nil
}

func (idx *Index) allowed(pos token.Position, analyzer string) bool {
	site := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
	for _, name := range idx.allow[site] {
		if name == analyzer || name == "all" {
			used := idx.allowUsed[site]
			if used == nil {
				used = map[string]bool{}
				idx.allowUsed[site] = used
			}
			used[name] = true
			return true
		}
	}
	return false
}

// AllowAudit is the staleness report of one //rbpc:allow name: the site
// ("file:line"), the analyzer name it names, and whether it suppressed
// any diagnostic during the run.
type AllowAudit struct {
	Site string
	Name string
	Used bool
}

// AuditAllows lists every //rbpc:allow name the index scanned with its
// usage. Meaningful only after the analyzers have run over every package
// whose allows the index holds (whole-module direct mode).
func (idx *Index) AuditAllows() []AllowAudit {
	var out []AllowAudit
	for site, names := range idx.allow {
		for _, name := range names {
			out = append(out, AllowAudit{Site: site, Name: name, Used: idx.allowUsed[site][name]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// TypeKey returns the index key of a named type.
func TypeKey(tn *types.TypeName) string {
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return tn.Pkg().Path() + "." + tn.Name()
}

// FuncKey returns the index key of a function or method.
func FuncKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path() + "."
	}
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		if named := namedOf(recv.Type()); named != nil {
			return pkg + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// fieldKey returns the index key for the field selected by sel (x.f where f
// is a struct field), resolving the receiver's named type. It reports ok =
// false for non-field selections. Fields reached through embedding are
// keyed by the outermost named type, which is the annotation-carrying type
// in every use this repository has.
func fieldKey(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	named := namedOf(s.Recv())
	if named == nil {
		return "", false
	}
	return TypeKey(named.Obj()) + "." + sel.Sel.Name, true
}

// namedOf unwraps pointers and aliases down to the *types.Named beneath t,
// or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// ctorPrefixes are function-name prefixes treated as constructor/build
// functions: they may write fields of //rbpc:immutable types and may touch
// guarded or atomic fields of objects they are still building. Anything
// else needs an explicit //rbpc:ctor.
var ctorPrefixes = []string{"new", "build", "make", "compile"}

// IsCtor reports whether the function is a constructor/build function:
// annotated //rbpc:ctor or named with a conventional constructor prefix.
func (idx *Index) IsCtor(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if idx.Ctor[FuncKey(fn)] {
		return true
	}
	name := strings.ToLower(fn.Name())
	for _, p := range ctorPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// directive splits an //rbpc: comment into its verb and argument string,
// reporting ok = false for any other comment.
func directive(c *ast.Comment) (verb, args string, ok bool) {
	text, found := strings.CutPrefix(c.Text, "//rbpc:")
	if !found {
		return "", "", false
	}
	verb, args, _ = strings.Cut(text, " ")
	return verb, strings.TrimSpace(args), true
}

// groupDirectives yields the directives of the given comment groups.
func groupDirectives(groups ...*ast.CommentGroup) [][2]string {
	var out [][2]string
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if verb, args, ok := directive(c); ok {
				out = append(out, [2]string{verb, args})
			}
		}
	}
	return out
}

// ScanPackage records the package's annotations, //rbpc:allow
// suppressions, and sync/atomic field-access facts into idx. It must run
// for a package before any analyzer runs over it, and — for whole-module
// analysis — for every package before any analyzer runs at all.
func ScanPackage(fset *token.FileSet, files []*ast.File, info *types.Info, idx *Index) {
	for _, f := range files {
		scanAllows(fset, f, idx)
		scanDecls(f, info, idx)
		scanAtomicAccesses(fset, f, info, idx)
		scanLockFacts(fset, f, info, idx)
	}
}

func scanAllows(fset *token.FileSet, f *ast.File, idx *Index) {
	for _, g := range f.Comments {
		for _, c := range g.List {
			verb, args, ok := directive(c)
			if !ok || verb != "allow" {
				continue
			}
			names, _, _ := strings.Cut(args, "--") // strip trailing reason
			pos := fset.Position(c.Pos())
			key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
			for _, n := range strings.Split(names, ",") {
				if n = strings.TrimSpace(n); n != "" {
					idx.allow[key] = append(idx.allow[key], n)
				}
			}
		}
	}
}

func scanDecls(f *ast.File, info *types.Info, idx *Index) {
	// A //rbpc:deterministic directive on the package clause marks every
	// function of the package.
	for _, dir := range groupDirectives(f.Doc) {
		if dir[0] == "deterministic" {
			if pkg := filePackage(f, info); pkg != "" {
				idx.DeterministicPkg[pkg] = true
			}
		}
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			fn, _ := info.Defs[d.Name].(*types.Func)
			if fn == nil {
				continue
			}
			for _, dir := range groupDirectives(d.Doc) {
				switch dir[0] {
				case "hotpath":
					idx.Hotpath[FuncKey(fn)] = true
				case "deterministic":
					idx.Deterministic[FuncKey(fn)] = true
				case "ctor":
					idx.Ctor[FuncKey(fn)] = true
				case "locked":
					idx.Locked[FuncKey(fn)] = true
				}
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE {
				continue
			}
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				tn, _ := info.Defs[ts.Name].(*types.TypeName)
				if tn == nil {
					continue
				}
				// A declaration group's doc applies to a lone spec.
				docs := []*ast.CommentGroup{ts.Doc, ts.Comment}
				if len(d.Specs) == 1 {
					docs = append(docs, d.Doc)
				}
				for _, dir := range groupDirectives(docs...) {
					switch dir[0] {
					case "immutable":
						idx.Immutable[TypeKey(tn)] = true
					case "epochscoped":
						idx.EpochScoped[TypeKey(tn)] = true
					}
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					scanFields(tn, st, idx)
				}
			}
		}
	}
}

func scanFields(tn *types.TypeName, st *ast.StructType, idx *Index) {
	for _, field := range st.Fields.List {
		for _, dir := range groupDirectives(field.Doc, field.Comment) {
			if dir[0] != "guardedby" || dir[1] == "" {
				continue
			}
			for _, name := range field.Names {
				idx.Guard[TypeKey(tn)+"."+name.Name] = dir[1]
			}
		}
	}
}

// scanAtomicAccesses records every struct field whose address is passed to
// a sync/atomic function — the raw-atomics usage the atomicmix analyzer
// polices. Fields of the typed atomics (atomic.Int64 etc.) are not
// recorded: their method set already forbids non-atomic access.
func scanAtomicAccesses(fset *token.FileSet, f *ast.File, info *types.Info, idx *Index) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if key, ok := fieldKey(info, sel); ok {
				if _, have := idx.Atomic[key]; !have {
					idx.Atomic[key] = fset.Position(sel.Pos()).String()
				}
			}
		}
		return true
	})
}

// calleeFunc resolves the statically known *types.Func a call targets
// (package function or method), or nil for builtins, conversions, and
// calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// forEachFunc visits every function declaration with a body, pairing the
// syntax with its type object. Analyzers drive their per-function walks
// from here; FuncLits belong to the enclosing declaration.
func forEachFunc(files []*ast.File, info *types.Info, visit func(fn *types.Func, decl *ast.FuncDecl)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			visit(fn, fd)
		}
	}
}
