// Package deterministicpkg exercises the package-clause form of the
// directive: every function in the package is checked.
//
//rbpc:deterministic
package deterministicpkg

import "time"

func anyFunc() int64 {
	return time.Now().Unix() // want "reads the wall clock"
}

func pure(a, b int) int { return a + b }

func sorted(keys []string, m map[string]int) []int {
	out := make([]int, 0, len(keys))
	for _, k := range keys { // slice range is ordered: fine
		out = append(out, m[k])
	}
	return out
}
