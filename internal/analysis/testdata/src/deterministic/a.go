// Package deterministic exercises the replay-reproducibility checker on
// functions individually annotated //rbpc:deterministic.
package deterministic

import (
	"fmt"
	"math/rand"
	"time"
)

//rbpc:deterministic
func schedule(seed int64, weights map[string]float64) []string {
	r := rand.New(rand.NewSource(seed)) // seeded constructor: fine
	var out []string
	for k := range weights { // want "ranges over a map"
		out = append(out, k)
	}
	if r.Intn(10) > 5 { // method on an explicit *rand.Rand: fine
		return nil
	}
	return out
}

//rbpc:deterministic
func stamp() string {
	t := time.Now() // want "reads the wall clock"
	return t.String()
}

//rbpc:deterministic
func draw() int {
	return rand.Intn(6) // want "global rand source"
}

//rbpc:deterministic
func format(x float64, n int) string {
	_ = fmt.Sprintf("%d", n)    // integers format deterministically: fine
	return fmt.Sprintf("%v", x) // want "formats a float"
}

// unmarked carries no annotation: free to do all of it.
func unmarked(m map[int]int) int {
	s := 0
	for k := range m {
		s += k
	}
	return s + rand.Intn(3) + int(time.Now().Unix())
}
