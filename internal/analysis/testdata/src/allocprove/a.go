// Package allocprove exercises the compiler-verified no-alloc checker:
// //rbpc:hotpath functions are cross-checked against `go tool compile
// -m=2` escape verdicts. Sources are import-free so the fixture compiles
// without an importcfg.
package allocprove

type point struct{ x, y int }

var sink *point

// leak returns the address of a local: the compiler moves p to the heap.
//
//rbpc:hotpath
func leak() *point {
	p := point{1, 2} // want "compiler-proven allocation"
	return &p
}

// fresh heap-allocates explicitly.
//
//rbpc:hotpath
func fresh() *point {
	return &point{3, 4} // want "compiler-proven allocation"
}

// sum is allocation-free: everything stays on the stack.
//
//rbpc:hotpath
func sum(ps []point) int {
	total := 0
	for i := range ps {
		total += ps[i].x + ps[i].y
	}
	return total
}

// cold allocates freely but is not a hotpath: no finding.
func cold() *point {
	p := point{5, 6}
	sink = &p
	return sink
}

// die is an unconditional panic wrapper: crash-path only, exempt even
// though formatting its message allocates.
//
//rbpc:hotpath
func die(code int) {
	panic("allocprove: fatal " + string(rune('0'+code)))
}

// guarded is allocation-free on the success path; the panic argument
// escaping is crash-path only and must not be reported.
//
//rbpc:hotpath
func guarded(ps []point, i int) int {
	if i >= len(ps) {
		die(i)
		panic(i)
	}
	return ps[i].x
}
