// Package fixture exercises the guardedby analyzer.
package fixture

import "sync"

type cache struct {
	mu sync.RWMutex

	entries map[int]int //rbpc:guardedby mu
	order   []int       //rbpc:guardedby mu

	hits int // unguarded: free to access
}

// get locks the guard before touching the guarded fields: clean.
func (c *cache) get(k int) (int, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.entries[k]
	return v, ok
}

// put write-locks: clean.
func (c *cache) put(k, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[k] = v
	c.order = append(c.order, k)
}

// newCache is a constructor: the value is not shared yet.
func newCache() *cache {
	c := &cache{entries: map[int]int{}}
	c.order = nil
	return c
}

// evictLocked documents that its caller holds the guard.
//
//rbpc:locked
func (c *cache) evictLocked() {
	for len(c.order) > 4 {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
}

// size reads a guarded field with no locking anywhere: flagged.
func (c *cache) size() int {
	return len(c.entries) // want "access to fixture.cache.entries without locking its guard \"mu\""
}

// drain writes guarded fields with no locking: flagged on each access.
func (c *cache) drain() {
	c.order = nil    // want "access to fixture.cache.order without locking its guard \"mu\""
	clear(c.entries) // want "access to fixture.cache.entries without locking its guard \"mu\""
	c.hits++         // unguarded field: fine
}

// peekSuppressed documents an intentional unlocked read.
func (c *cache) peekSuppressed() int {
	return len(c.order) //rbpc:allow guardedby -- racy size estimate is acceptable here
}
