// Package fixture exercises the immutable analyzer.
package fixture

// Snapshot mimics the engine's epoch snapshot.
//
//rbpc:immutable
type Snapshot struct {
	epoch uint64
	rows  [][]int
	meta  map[string]int
	sub   inner
}

type inner struct{ n int }

// Mutable has no annotation: writes to it are never flagged.
type Mutable struct {
	epoch uint64
	rows  [][]int
}

// NewSnapshot is a constructor by naming convention: writes allowed.
func NewSnapshot() *Snapshot {
	s := &Snapshot{}
	s.epoch = 1
	s.rows = make([][]int, 4)
	s.meta = map[string]int{}
	return s
}

// buildRows is a build function by naming convention: writes allowed.
func buildRows(s *Snapshot) {
	s.rows[0] = []int{1}
}

// seed is annotated as a constructor: writes allowed.
//
//rbpc:ctor
func seed(s *Snapshot) {
	s.meta["x"] = 1
	s.epoch++
}

// mutateDirect writes a field outside any constructor.
func mutateDirect(s *Snapshot) {
	s.epoch = 2 // want "write to field Snapshot.epoch of immutable type fixture.Snapshot"
}

// mutateThroughIndex writes through an index expression.
func mutateThroughIndex(s *Snapshot) {
	s.rows[3] = nil // want "write to field Snapshot.rows of immutable type fixture.Snapshot"
}

// mutateDeep writes a field of a struct field: still reachable from the
// immutable value.
func mutateDeep(s *Snapshot) {
	s.sub.n = 7 // want "write to field Snapshot.sub of immutable type fixture.Snapshot"
}

// mutateIncDec increments a field.
func mutateIncDec(s *Snapshot) {
	s.epoch++ // want "write to field Snapshot.epoch of immutable type fixture.Snapshot"
}

// mutateBuiltin clears a map field.
func mutateBuiltin(s *Snapshot) {
	clear(s.meta) // want "clear on field Snapshot.meta of immutable type fixture.Snapshot"
}

// mutateSuppressed carries an explicit allow: not flagged.
func mutateSuppressed(s *Snapshot) {
	s.epoch = 9 //rbpc:allow immutable -- fixture exercises the escape hatch
}

// mutateOther writes an unannotated type: not flagged.
func mutateOther(m *Mutable) {
	m.epoch = 3
	m.rows[0] = nil
}

// readOnly reads are always fine.
func readOnly(s *Snapshot) uint64 {
	if len(s.rows) > 0 {
		return s.epoch
	}
	return 0
}
