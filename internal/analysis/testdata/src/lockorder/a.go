// Package lockorder exercises the mutex-acquisition-order checker: lock
// classes acquired in both orders (directly or through a call chain) are
// cycles; consistent orders and release-before-acquire sequences are not.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// ab commits to the order A → B.
func ab(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock order cycle"
	b.mu.Unlock()
	a.mu.Unlock()
}

// ba commits to the reverse order B → A: together with ab, a deadlock.
func ba(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock() // want "lock order cycle"
	a.mu.Unlock()
	b.mu.Unlock()
}

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

// cd1 and cd2 agree on C → D: consistent, no finding.
func cd1(c *C, d *D) {
	c.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func cd2(c *C, d *D) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
}

// release drops D before taking C — no D → C edge, so no cycle with cd1.
func release(c *C, d *D) {
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}

type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

// lockF acquires F on behalf of callers; ef calls it while holding E, so
// the edge E → F exists only transitively through the call graph.
func lockF(f *F) {
	f.mu.Lock() // want "lock order cycle"
	f.mu.Unlock()
}

func ef(e *E, f *F) {
	e.mu.Lock()
	lockF(f)
	e.mu.Unlock()
}

// fe commits to F → E directly: a cycle with ef's transitive E → F.
func fe(e *E, f *F) {
	f.mu.Lock()
	e.mu.Lock() // want "lock order cycle"
	e.mu.Unlock()
	f.mu.Unlock()
}

type S struct{ mu sync.Mutex }

// nest locks two instances of the same class with no canonical order: the
// classic AB/BA self-deadlock, a cycle of length one on the class.
func nest(a, b *S) {
	a.mu.Lock()
	b.mu.Lock() // want "lock order cycle"
	b.mu.Unlock()
	a.mu.Unlock()
}
