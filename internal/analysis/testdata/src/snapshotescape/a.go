// Package snapshotescape exercises the epoch-lifetime checker: values of
// //rbpc:epochscoped types may be read anywhere but never stored where
// they outlive the epoch.
package snapshotescape

// Snap stands in for an epoch snapshot.
//
//rbpc:epochscoped
type Snap struct{ rows []int }

// View is an epoch-scoped carrier: holding snapshots inside it is fine,
// because View itself obeys the same lifetime rules.
//
//rbpc:epochscoped
type View struct{ snaps []*Snap }

// holder is long-lived; parking a snapshot in it leaks the epoch.
type holder struct {
	cur *Snap // want "non-epoch-scoped struct"
}

var lastSnap *Snap // want "package-level variable"

var sink any

func keep(s *Snap) *Snap {
	local := s // locals are epoch-scoped by construction: fine
	sink = s   // want "stored into package-level variable"
	return local
}

func stale(s *Snap) {
	lastSnap = s // want "stored into package-level variable"
}

func channels(s *Snap, out chan any, scoped chan *Snap) {
	out <- s    // want "sent on a channel"
	scoped <- s // element type is epoch-scoped: fine
}

type box struct{ v any }

func wrap(s *Snap) box {
	return box{v: s} // want "captured by composite literal"
}

// result is an epoch-scoped carrier, so building one around a snapshot
// is the sanctioned pattern (engine.Result, shard.coldReq).
//
//rbpc:epochscoped
type result struct{ s *Snap }

func publish(s *Snap) result {
	return result{s: s}
}

func read(v *View) int {
	n := 0
	for _, s := range v.snaps {
		n += len(s.rows)
	}
	return n
}
