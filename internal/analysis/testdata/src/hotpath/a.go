// Package fixture exercises the hotpath analyzer.
package fixture

import (
	"fmt"
	"sync/atomic"
)

type table struct {
	rows  []int
	index map[int]int
	n     atomic.Int64
	raw   int64
}

// lookup is a clean hot path: index reads, atomic methods, raw atomics,
// math, and calls to other hotpath functions.
//
//rbpc:hotpath
func lookup(t *table, i int) int {
	t.n.Add(1)
	atomic.AddInt64(&t.raw, 1)
	if i < 0 || i >= len(t.rows) {
		return -1
	}
	return t.rows[i] + helperHot(i)
}

// helperHot is hotpath, so lookup may call it.
//
//rbpc:hotpath
func helperHot(i int) int { return i * 2 }

// helperCold is NOT hotpath.
func helperCold(i int) int { return i * 3 }

// coldAllocs is unannotated: nothing in it is flagged.
func coldAllocs() []int {
	s := make([]int, 8)
	s = append(s, 1)
	return s
}

// allocs is a hot path full of allocating constructs.
//
//rbpc:hotpath
func allocs(t *table, s string) {
	_ = make([]int, 4)         // want "make allocates"
	t.rows = append(t.rows, 1) // want "append may grow its backing array"
	t.index[1] = 2             // want "map write may allocate"
	_ = s + "!"                // want "string concatenation allocates"
	_ = []byte(s)              // want "string/slice conversion allocates"
	_ = []int{1, 2}            // want "slice composite literal allocates"
	_ = &table{}               // want "&composite literal escapes to the heap"
}

// badCalls calls outside the verified set.
//
//rbpc:hotpath
func badCalls(t *table, f func() int) {
	helperCold(1)     // want "call to non-hotpath function fixture.helperCold"
	fmt.Sprintln("x") // want "call to non-allowlisted function fmt.Sprintln"
	f()               // want "dynamic call through a function value"
	go helperHot(1)   // want "go statement spawns a goroutine"
	x := 1
	_ = func() int { // want "closure captures variables"
		return x
	}
}

// suppressed shows the per-line escape hatch: the append is amortized
// away by a preallocated capacity, so it is allowed with a reason.
//
//rbpc:hotpath
func suppressed(t *table) {
	t.rows = append(t.rows, 1) //rbpc:allow hotpath -- capacity preallocated, growth amortized
}

// nonCapturing closures and struct-valued composite literals are fine.
//
//rbpc:hotpath
func nonCapturing(t *table) table {
	_ = func() int { return 42 }
	return table{raw: 1}
}
