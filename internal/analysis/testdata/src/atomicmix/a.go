// Package fixture exercises the atomicmix analyzer.
package fixture

import "sync/atomic"

type counters struct {
	served  int64 // accessed via sync/atomic: every access must be atomic
	dropped int64 // likewise
	plain   int64 // never touched atomically: free-form access is fine
	typed   atomic.Int64
}

// bump is the atomic side; these accesses define the discipline.
func bump(c *counters) {
	atomic.AddInt64(&c.served, 1)
	atomic.AddInt64(&c.dropped, 1)
	c.typed.Add(1)
}

// scrape reads atomically: clean.
func scrape(c *counters) (int64, int64) {
	return atomic.LoadInt64(&c.served), atomic.LoadInt64(&c.dropped)
}

// newCounters initializes raw fields directly: constructors are exempt.
func newCounters() *counters {
	c := &counters{}
	c.served = 0
	c.typed = atomic.Int64{}
	return c
}

// mixedRead reads an atomically-written field without atomics: flagged.
func mixedRead(c *counters) int64 {
	return c.served // want "non-atomic access to fixture.counters.served"
}

// mixedWrite writes one without atomics: flagged.
func mixedWrite(c *counters) {
	c.dropped = 0 // want "non-atomic access to fixture.counters.dropped"
}

// overwriteTyped reassigns a typed atomic outside a constructor: flagged.
func overwriteTyped(c *counters) {
	c.typed = atomic.Int64{} // want "assignment to atomic-typed field typed bypasses its method set"
}

// plainAccess touches the never-atomic field: fine.
func plainAccess(c *counters) {
	c.plain += 2
	_ = c.plain
}

// typedMethods uses the typed atomic's method set: fine.
func typedMethods(c *counters) int64 {
	return c.typed.Load()
}

// suppressed documents a deliberate pre-publication plain write.
func suppressed(c *counters) {
	c.served = 0 //rbpc:allow atomicmix -- reset before the goroutines start
}
