package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// LoadedPackage is one type-checked package ready for analysis.
type LoadedPackage struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// LoadPackages loads and type-checks the packages matched by the patterns
// (plus nothing else: dependencies are imported from compiler export data,
// not re-parsed). It shells out to `go list -export`, so it works offline
// against the local build cache, exactly like `go vet` does.
func LoadPackages(dir string, patterns ...string) ([]*LoadedPackage, *token.FileSet, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportDataImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})

	var loaded []*LoadedPackage
	for _, t := range targets {
		lp, err := CheckPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, nil, err
		}
		loaded = append(loaded, lp)
	}
	return loaded, fset, nil
}

// ExportDataImporter returns a types importer that resolves every import
// from compiler export data located by resolve (an import path to file
// mapping — `go list -export` output in direct mode, the vet config's
// PackageFile in vettool mode).
func ExportDataImporter(fset *token.FileSet, resolve func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := resolve(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// CheckPackage parses and type-checks one package's files with the given
// importer, returning the loaded package with full type information.
func CheckPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*LoadedPackage, error) {
	var files []*ast.File
	for _, gf := range goFiles {
		name := gf
		if dir != "" && !filepath.IsAbs(gf) {
			name = filepath.Join(dir, gf)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &LoadedPackage{Path: importPath, Files: files, Types: pkg, Info: info}, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// AnalyzeModule is the whole-module entry point cmd/rbpc-lint uses: load
// every matched package, build the module-wide annotation index, then run
// the analyzers over each package against that shared index. This is the
// most precise mode — every cross-package edge (a hotpath call into
// another package, an atomic access far from a plain one) is visible.
func AnalyzeModule(analyzers []*Analyzer, dir string, patterns ...string) ([]Diagnostic, error) {
	pkgs, fset, err := LoadPackages(dir, patterns...)
	if err != nil {
		return nil, err
	}
	idx := NewIndex()
	for _, p := range pkgs {
		ScanPackage(fset, p.Files, p.Info, idx)
	}
	var diags []Diagnostic
	for _, p := range pkgs {
		diags = append(diags, RunAnalyzers(analyzers, fset, p.Files, p.Types, p.Info, idx)...)
	}
	return diags, nil
}
