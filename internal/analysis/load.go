package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// LoadedPackage is one type-checked package ready for analysis.
type LoadedPackage struct {
	Path string
	// Dir is the package directory on disk.
	Dir string
	// GoFiles are the parsed file paths exactly as handed to the parser
	// (dir-joined), so compiler escape output lines up with the FileSet.
	GoFiles []string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// listModule shells out to `go list -export` for the patterns, returning
// the target packages (metadata only — nothing parsed yet) and the export
// data of every package in the dependency closure.
func listModule(dir string, patterns ...string) ([]listedPackage, map[string]string, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	return targets, exports, nil
}

// LoadPackages loads and type-checks the packages matched by the patterns
// (plus nothing else: dependencies are imported from compiler export data,
// not re-parsed). It shells out to `go list -export`, so it works offline
// against the local build cache, exactly like `go vet` does.
func LoadPackages(dir string, patterns ...string) ([]*LoadedPackage, *token.FileSet, error) {
	targets, exports, err := listModule(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	imp := ExportDataImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	var loaded []*LoadedPackage
	for _, t := range targets {
		lp, err := CheckPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, nil, err
		}
		loaded = append(loaded, lp)
	}
	return loaded, fset, nil
}

// ExportDataImporter returns a types importer that resolves every import
// from compiler export data located by resolve (an import path to file
// mapping — `go list -export` output in direct mode, the vet config's
// PackageFile in vettool mode).
func ExportDataImporter(fset *token.FileSet, resolve func(path string) (string, bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := resolve(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// CheckPackage parses and type-checks one package's files with the given
// importer, returning the loaded package with full type information.
func CheckPackage(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*LoadedPackage, error) {
	var files []*ast.File
	var names []string
	for _, gf := range goFiles {
		name := gf
		if dir != "" && !filepath.IsAbs(gf) {
			name = filepath.Join(dir, gf)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", name, err)
		}
		files = append(files, f)
		names = append(names, name)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", importPath, err)
	}
	return &LoadedPackage{Path: importPath, Dir: dir, GoFiles: names, Files: files, Types: pkg, Info: info}, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

// ModuleOptions configures a whole-module analysis run.
type ModuleOptions struct {
	// Dir is the module directory `go list` runs in.
	Dir string
	// Patterns are the package patterns (default ./...).
	Patterns []string
	// Analyzers is the checker set (default All).
	Analyzers []*Analyzer
	// Escapes runs the compiler's escape analysis per package so
	// allocprove has ground truth. Requires the module to build.
	Escapes bool
	// CacheDir enables the content-hash fact cache rooted there
	// (satellite: unchanged packages are neither re-parsed nor
	// re-compiled on warm runs). Empty disables caching.
	CacheDir string
	// UnusedAllow audits //rbpc:allow staleness across the run.
	UnusedAllow bool
}

// ModuleResult is a whole-module analysis outcome.
type ModuleResult struct {
	// Diags are the findings, position-sorted and deduplicated.
	Diags []Diagnostic
	// StaleAllows are //rbpc:allow names that suppressed nothing
	// (populated only when ModuleOptions.UnusedAllow is set).
	StaleAllows []AllowAudit
}

// AnalyzeModule is the legacy whole-module entry point: load every matched
// package, build the module-wide annotation index, then run the analyzers
// over each package against that shared index (no escape analysis, no
// cache). Kept for tests; drivers use AnalyzeModuleOpts.
func AnalyzeModule(analyzers []*Analyzer, dir string, patterns ...string) ([]Diagnostic, error) {
	res, err := AnalyzeModuleOpts(ModuleOptions{Dir: dir, Patterns: patterns, Analyzers: analyzers})
	if err != nil {
		return nil, err
	}
	return res.Diags, nil
}

// AnalyzeModuleOpts is the whole-module entry point cmd/rbpc-lint uses.
// This is the most precise mode — every cross-package edge (a hotpath
// call into another package, a lock acquired three calls away, an atomic
// access far from a plain one) is visible because the module-wide index
// is complete before any analyzer runs.
func AnalyzeModuleOpts(opts ModuleOptions) (*ModuleResult, error) {
	if len(opts.Patterns) == 0 {
		opts.Patterns = []string{"./..."}
	}
	if opts.Analyzers == nil {
		opts.Analyzers = All
	}
	targets, exports, err := listModule(opts.Dir, opts.Patterns...)
	if err != nil {
		return nil, err
	}

	var cache *factCache
	if opts.CacheDir != "" {
		cache, err = openFactCache(opts.CacheDir)
		if err != nil {
			return nil, err
		}
	}
	keys := cacheKeys(cache, targets, opts)

	// Lazy parse+typecheck: warm cache runs touch no source at all.
	fset := token.NewFileSet()
	imp := ExportDataImporter(fset, func(path string) (string, bool) {
		f, ok := exports[path]
		return f, ok
	})
	loaded := map[string]*LoadedPackage{}
	load := func(t listedPackage) (*LoadedPackage, error) {
		if lp, ok := loaded[t.ImportPath]; ok {
			return lp, nil
		}
		lp, err := CheckPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		loaded[t.ImportPath] = lp
		return lp, nil
	}

	// A single importcfg over the whole closure serves every compile.
	importCfg := ""
	if opts.Escapes {
		tmpDir, err := os.MkdirTemp("", "rbpc-lint-escapes-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmpDir)
		importCfg, err = WriteImportCfg(tmpDir, exports, nil)
		if err != nil {
			return nil, err
		}
	}

	// Phase 1: per-package facts (and escapes), cached by content key.
	perPkg := map[string]*Index{}
	escapes := map[string][]Escape{}
	for _, t := range targets {
		key := keys[t.ImportPath]
		if cache != nil {
			if e, ok := cache.load(t.ImportPath); ok && e.Key == key && (!opts.Escapes || e.HasEscapes) {
				idx, err := UnmarshalFacts(e.Facts)
				if err == nil {
					idx.allow = e.Allows
					if idx.allow == nil {
						idx.allow = map[string][]string{}
					}
					perPkg[t.ImportPath] = idx
					if opts.Escapes {
						escapes[t.ImportPath] = nonNilEscapes(e.Escapes)
					}
					continue
				}
			}
		}
		lp, err := load(t)
		if err != nil {
			return nil, err
		}
		idx := NewIndex()
		ScanPackage(fset, lp.Files, lp.Info, idx)
		perPkg[t.ImportPath] = idx
		if opts.Escapes {
			esc, err := CollectEscapes(EscapeConfig{
				Dir: lp.Dir, ImportPath: lp.Path, GoFiles: lp.GoFiles, ImportCfg: importCfg,
			})
			if err != nil {
				return nil, err
			}
			escapes[t.ImportPath] = esc
		}
	}

	// Merge into the module index; its serialized hash keys the diag
	// phase, so an annotation change anywhere re-runs every analyzer.
	module := NewIndex()
	for _, t := range targets {
		module.mergeLocal(perPkg[t.ImportPath])
	}
	factsHash, err := indexHash(module)
	if err != nil {
		return nil, err
	}

	// Phase 2: diagnostics against the module index.
	var diags []Diagnostic
	fresh := map[string][]Diagnostic{}
	for _, t := range targets {
		key := keys[t.ImportPath]
		if cache != nil {
			if e, ok := cache.load(t.ImportPath); ok && e.Key == key && e.HasDiags && e.DiagsKey == factsHash &&
				(!opts.Escapes || e.HasEscapes) {
				diags = append(diags, e.Diags...)
				module.replayUsedAllows(e.UsedAllows)
				continue
			}
		}
		lp, err := load(t)
		if err != nil {
			return nil, err
		}
		d := RunAnalyzers(opts.Analyzers, &Unit{
			Fset: fset, Files: lp.Files, Pkg: lp.Types, Info: lp.Info, Escapes: escapes[t.ImportPath],
		}, module)
		diags = append(diags, d...)
		fresh[t.ImportPath] = d
	}

	if cache != nil {
		for _, t := range targets {
			d, recomputed := fresh[t.ImportPath]
			if !recomputed {
				continue // cached entry already current
			}
			idx := perPkg[t.ImportPath]
			facts, err := idx.MarshalFacts()
			if err != nil {
				continue
			}
			esc, hasEsc := escapes[t.ImportPath]
			cache.store(t.ImportPath, &cacheEntry{
				Key:        keys[t.ImportPath],
				Facts:      facts,
				Allows:     idx.allow,
				Escapes:    esc,
				HasEscapes: hasEsc,
				DiagsKey:   factsHash,
				HasDiags:   true,
				Diags:      nonNilDiags(d),
				UsedAllows: module.usedAllowsFor(idx.allow),
			})
		}
	}

	res := &ModuleResult{Diags: SortDiags(diags)}
	if opts.UnusedAllow {
		for _, a := range module.AuditAllows() {
			if !a.Used {
				res.StaleAllows = append(res.StaleAllows, a)
			}
		}
	}
	return res, nil
}

func nonNilEscapes(e []Escape) []Escape {
	if e == nil {
		return []Escape{}
	}
	return e
}

func nonNilDiags(d []Diagnostic) []Diagnostic {
	if d == nil {
		return []Diagnostic{}
	}
	return d
}
