package analysis

import (
	"go/ast"
	"go/types"
)

// Deterministic checks functions annotated //rbpc:deterministic (or whole
// packages whose package clause carries the directive): code the chaos
// harness replays from a seed, the ring construction every shard must
// agree on, and the corpus files that must be byte-stable across runs.
// Such code must not:
//
//   - range over a map (iteration order is randomized per run),
//   - read the wall clock (time.Now / time.Since),
//   - draw from math/rand's global generator (rand.New(rand.NewSource(seed))
//     and methods on an explicit *rand.Rand are fine — that is the seeded
//     idiom the harness uses), or
//   - format floats through fmt's Sprint family (float-to-string round
//     trips are a classic source of replay divergence; use
//     strconv.FormatFloat with explicit precision, or compare numerically).
var Deterministic = &Analyzer{
	Name: "deterministic",
	Doc:  "replay-critical code must be bit-reproducible",
	Run:  runDeterministic,
}

// detRandAllowed are the math/rand package-level functions a deterministic
// function may call: the constructors of an explicitly seeded source.
var detRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// detSprintFuncs are the fmt formatters whose float handling is policed.
var detSprintFuncs = map[string]bool{
	"Sprint": true, "Sprintf": true, "Sprintln": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
	"Appendf": true, "Append": true, "Appendln": true,
}

func runDeterministic(pass *Pass) {
	pkgScoped := pass.Index.DeterministicPkg[pass.Pkg.Path()]
	if !pkgScoped && len(pass.Index.Deterministic) == 0 {
		return
	}
	forEachFunc(pass.Files, pass.Info, func(fn *types.Func, decl *ast.FuncDecl) {
		if !pkgScoped && !pass.Index.Deterministic[FuncKey(fn)] {
			return
		}
		key := FuncKey(fn)
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := pass.Info.TypeOf(n.X)
				if t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(),
							"deterministic function %s ranges over a map (iteration order is randomized); collect and sort the keys",
							key)
					}
				}
			case *ast.CallExpr:
				checkDeterministicCall(pass, key, n)
			}
			return true
		})
	})
}

func checkDeterministicCall(pass *Pass, key string, call *ast.CallExpr) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	switch fn.Pkg().Path() {
	case "time":
		if !isMethod && (fn.Name() == "Now" || fn.Name() == "Since" || fn.Name() == "Until") {
			pass.Reportf(call.Pos(),
				"deterministic function %s reads the wall clock via time.%s; thread a logical clock through instead",
				key, fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Methods on an explicit *rand.Rand are seeded by construction;
		// package-level draws go through the shared global source.
		if !isMethod && !detRandAllowed[fn.Name()] {
			pass.Reportf(call.Pos(),
				"deterministic function %s draws from the global rand source via rand.%s; use rand.New(rand.NewSource(seed))",
				key, fn.Name())
		}
	case "fmt":
		if isMethod || !detSprintFuncs[fn.Name()] {
			return
		}
		for _, arg := range call.Args {
			t := pass.Info.TypeOf(arg)
			if t == nil {
				continue
			}
			if b, ok := t.Underlying().(*types.Basic); ok &&
				(b.Kind() == types.Float32 || b.Kind() == types.Float64 ||
					b.Kind() == types.UntypedFloat) {
				pass.Reportf(arg.Pos(),
					"deterministic function %s formats a float through fmt.%s; use strconv.FormatFloat with explicit precision",
					key, fn.Name())
			}
		}
	}
}
