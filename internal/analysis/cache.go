package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// cacheFormat is bumped whenever the entry layout or the meaning of any
// fact changes; it invalidates every existing entry at once.
const cacheFormat = "rbpc-lint-cache-v1"

// cacheEntry is one package's cached lint state. Facts (phase 1) are
// valid whenever Key matches the package's content key; Diags (phase 2)
// additionally require DiagsKey to match the hash of the *module-wide*
// merged fact index, because an annotation added in any package can
// change every package's findings.
type cacheEntry struct {
	Key        string              `json:"key"`
	Facts      json.RawMessage     `json:"facts"`
	Allows     map[string][]string `json:"allows,omitempty"`
	Escapes    []Escape            `json:"escapes,omitempty"`
	HasEscapes bool                `json:"hasescapes,omitempty"`
	DiagsKey   string              `json:"diagskey,omitempty"`
	HasDiags   bool                `json:"hasdiags,omitempty"`
	Diags      []Diagnostic        `json:"diags,omitempty"`
	UsedAllows map[string][]string `json:"usedallows,omitempty"`
}

// factCache is a directory of per-package cacheEntry files keyed by
// import path.
type factCache struct {
	dir string
	mem map[string]*cacheEntry
}

func openFactCache(dir string) (*factCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lint cache: %v", err)
	}
	return &factCache{dir: dir, mem: map[string]*cacheEntry{}}, nil
}

func (c *factCache) file(importPath string) string {
	sum := sha256.Sum256([]byte(importPath))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:16])+".json")
}

func (c *factCache) load(importPath string) (*cacheEntry, bool) {
	if e, ok := c.mem[importPath]; ok {
		return e, e != nil
	}
	data, err := os.ReadFile(c.file(importPath))
	if err != nil {
		c.mem[importPath] = nil
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil {
		c.mem[importPath] = nil
		return nil, false
	}
	c.mem[importPath] = &e
	return &e, true
}

func (c *factCache) store(importPath string, e *cacheEntry) {
	c.mem[importPath] = e
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "entry-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	tmp.Close()
	os.Rename(tmp.Name(), c.file(importPath)) // atomic publish; failure = no cache
}

// cacheKeys computes every target's content key: a Merkle hash over the
// checker configuration, the toolchain version, the package's own file
// contents, and — transitively — the keys of its module-local imports
// (escape analysis sees through inlined callees, so a dependency edit
// must invalidate its importers). Returns nil when the cache is off.
func cacheKeys(cache *factCache, targets []listedPackage, opts ModuleOptions) map[string]string {
	if cache == nil {
		return nil
	}
	byPath := map[string]*listedPackage{}
	for i := range targets {
		byPath[targets[i].ImportPath] = &targets[i]
	}
	keys := map[string]string{}
	var keyOf func(path string) string
	keyOf = func(path string) string {
		if k, ok := keys[path]; ok {
			return k
		}
		keys[path] = "" // cycle guard; import cycles are ill-formed anyway
		t, ok := byPath[path]
		if !ok {
			// Outside the target set (stdlib): the toolchain version
			// already feeds the hash below.
			return ""
		}
		h := sha256.New()
		fmt.Fprintln(h, cacheFormat, runtime.Version())
		fmt.Fprintln(h, "escapes:", opts.Escapes)
		for _, a := range opts.Analyzers {
			fmt.Fprintln(h, "analyzer:", a.Name)
		}
		for _, gf := range t.GoFiles {
			name := gf
			if !filepath.IsAbs(name) {
				name = filepath.Join(t.Dir, name)
			}
			data, err := os.ReadFile(name)
			if err != nil {
				fmt.Fprintln(h, "unreadable:", name)
				continue
			}
			sum := sha256.Sum256(data)
			fmt.Fprintln(h, "file:", gf, hex.EncodeToString(sum[:]))
		}
		imports := append([]string(nil), t.Imports...)
		sort.Strings(imports)
		for _, imp := range imports {
			fmt.Fprintln(h, "import:", imp, keyOf(imp))
		}
		k := hex.EncodeToString(h.Sum(nil))
		keys[path] = k
		return k
	}
	for _, t := range targets {
		keyOf(t.ImportPath)
	}
	return keys
}

// indexHash is the digest of a serialized index — the module-wide facts
// fingerprint gating cached diagnostics.
func indexHash(idx *Index) (string, error) {
	data, err := idx.MarshalFacts()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// mergeLocal folds a same-module package index into idx including the
// file-local parts Merge skips: allow sites and their usage.
func (idx *Index) mergeLocal(o *Index) {
	if o == nil {
		return
	}
	idx.Merge(o)
	for site, names := range o.allow {
		idx.allow[site] = mergeStrings(idx.allow[site], names)
	}
	for site, used := range o.allowUsed {
		for name := range used {
			idx.markAllowUsed(site, name)
		}
	}
}

// replayUsedAllows re-applies cached suppression usage so the
// -unused-allow audit stays accurate when diagnostics come from cache.
func (idx *Index) replayUsedAllows(used map[string][]string) {
	for site, names := range used {
		for _, name := range names {
			idx.markAllowUsed(site, name)
		}
	}
}

// usedAllowsFor extracts the usage records for the given allow sites (one
// package's slice of the module-wide usage map), for caching.
func (idx *Index) usedAllowsFor(allow map[string][]string) map[string][]string {
	out := map[string][]string{}
	for site := range allow {
		used := idx.allowUsed[site]
		if len(used) == 0 {
			continue
		}
		names := make([]string, 0, len(used))
		for name := range used {
			names = append(names, name)
		}
		sort.Strings(names)
		out[site] = names
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func (idx *Index) markAllowUsed(site, name string) {
	used := idx.allowUsed[site]
	if used == nil {
		used = map[string]bool{}
		idx.allowUsed[site] = used
	}
	used[name] = true
}
