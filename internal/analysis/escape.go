package analysis

import (
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// EscapeConfig describes one `go tool compile -m=2` invocation. The
// drivers (direct mode, vet unit mode, the fixture kit) each know how to
// assemble it from their own package metadata.
type EscapeConfig struct {
	// Dir is the working directory for the compile invocation; file paths
	// in GoFiles are resolved against it.
	Dir string
	// ImportPath is the package's import path (compile -p).
	ImportPath string
	// GoFiles are the package's compiled Go files, spelled exactly as
	// they were handed to the parser, so the compiler's position output
	// matches the FileSet.
	GoFiles []string
	// ImportCfg is the path of an importcfg file mapping every import to
	// its export data ("packagefile path=file" lines). Empty for
	// import-free sources (the fixture case).
	ImportCfg string
}

// escapeLineRE matches the compiler's position-prefixed -m output.
var escapeLineRE = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// CollectEscapes runs the compiler's escape analysis over one package and
// returns the heap verdicts ("x escapes to heap", "moved to heap: x").
// It invokes `go tool compile` directly rather than `go build
// -gcflags=-m` because the build cache swallows -m output on cache hits —
// the analyzer would silently pass on every unchanged package.
//
// The returned slice is non-nil on success even when empty, which is how
// AllocProve distinguishes "compiler proved it clean" from "nobody ran
// the compiler".
func CollectEscapes(cfg EscapeConfig) ([]Escape, error) {
	if len(cfg.GoFiles) == 0 {
		return []Escape{}, nil
	}
	args := []string{"tool", "compile", "-p", cfg.ImportPath, "-m=2", "-o", os.DevNull}
	if cfg.ImportCfg != "" {
		args = append(args, "-importcfg", cfg.ImportCfg)
	}
	args = append(args, cfg.GoFiles...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go tool compile -m=2 %s: %v\n%s", cfg.ImportPath, err, out)
	}
	return parseEscapes(string(out)), nil
}

// parseEscapes extracts the heap verdicts from -m=2 output, dropping
// inlining chatter, parameter-leak reports, and the indented flow
// explanations that follow each verdict.
func parseEscapes(out string) []Escape {
	escapes := []Escape{}
	seen := map[Escape]bool{}
	for _, line := range strings.Split(out, "\n") {
		m := escapeLineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if strings.HasPrefix(msg, " ") || strings.HasPrefix(msg, "\t") {
			continue // "flow:" / "from ..." explanation detail
		}
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		e := Escape{File: m[1], Line: line, Col: col, Msg: strings.TrimSuffix(msg, ":")}
		if !seen[e] {
			seen[e] = true
			escapes = append(escapes, e)
		}
	}
	sort.Slice(escapes, func(i, j int) bool {
		a, b := escapes[i], escapes[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Msg < b.Msg
	})
	return escapes
}

// WriteImportCfg writes an importcfg file for CollectEscapes from an
// import-path → export-data-file map (and optional importmap entries),
// returning the file's path. The caller owns the temp file.
func WriteImportCfg(dir string, packageFile map[string]string, importMap map[string]string) (string, error) {
	var b strings.Builder
	b.WriteString("# rbpc-lint escape-analysis import config\n")
	paths := make([]string, 0, len(importMap))
	for k := range importMap {
		paths = append(paths, k)
	}
	sort.Strings(paths)
	for _, k := range paths {
		fmt.Fprintf(&b, "importmap %s=%s\n", k, importMap[k])
	}
	paths = paths[:0]
	for k := range packageFile {
		paths = append(paths, k)
	}
	sort.Strings(paths)
	for _, k := range paths {
		fmt.Fprintf(&b, "packagefile %s=%s\n", k, packageFile[k])
	}
	f, err := os.CreateTemp(dir, "rbpc-lint-importcfg-*")
	if err != nil {
		return "", err
	}
	if _, err := f.WriteString(b.String()); err != nil {
		f.Close()
		os.Remove(f.Name())
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return "", err
	}
	return f.Name(), nil
}
