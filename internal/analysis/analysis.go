// Package analysis is rbpc's invariant checker suite: a small, self-
// contained go/analysis-style framework plus four custom analyzers that
// machine-check the hand-enforced invariants the online serving engine's
// correctness and performance claims rest on.
//
// The paper's "fast recovery" story (restoration answered from immutable
// epoch snapshots, allocation-free on the query path) only holds in
// production if invariants that today live in comments — "Snapshot is
// immutable after publish", "Query is 0 allocs/op", "trees is guarded by
// mu", "onDemand is only touched atomically" — never regress. The
// analyzers turn those comments into machine-checked annotations:
//
//   - immutable  (//rbpc:immutable on a type): fields must not be written
//     outside constructor/build functions.
//   - hotpath    (//rbpc:hotpath on a function): no allocating constructs,
//     and only calls to other hotpath or allowlisted functions.
//   - guardedby  (//rbpc:guardedby mu on a field): accesses only in
//     functions that lock mu (intra-procedural; //rbpc:locked escape).
//   - atomicmix: a field accessed via sync/atomic anywhere must never be
//     accessed non-atomically elsewhere.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is built on the standard library only,
// because this repository vendors no dependencies. Cross-package
// information (which functions are hotpath, which fields are atomic) flows
// through a string-keyed Index instead of typed Facts: in whole-module
// mode (cmd/rbpc-lint ./...) the index is built over every package before
// any analyzer runs; in `go vet -vettool` mode it is serialized to the
// vet facts files.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //rbpc:allow
	// suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant checked.
	Doc string
	// Run reports the analyzer's diagnostics for one package via
	// pass.Report.
	Run func(pass *Pass)
}

// All is the full rbpc-lint suite in reporting order.
var All = []*Analyzer{Immutable, Hotpath, GuardedBy, AtomicMix}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one analyzer's view of one package: its syntax, type
// information, and the (possibly module-wide) annotation index.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Index holds annotations and atomic-access facts for this package and
	// every package it can see (the whole module in direct mode, this
	// package plus its dependencies' facts in vettool mode).
	Index *Index

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a //rbpc:allow comment on the
// same source line suppresses this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Index.allowed(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzers runs each analyzer over the package and returns the
// combined diagnostics sorted by position.
func RunAnalyzers(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File,
	pkg *types.Package, info *types.Info, idx *Index) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			Index:    idx,
			diags:    &diags,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}
