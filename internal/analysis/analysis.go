// Package analysis is rbpc's invariant checker suite: a small, self-
// contained go/analysis-style framework plus eight custom analyzers that
// machine-check the hand-enforced invariants the online serving engine's
// correctness and performance claims rest on.
//
// The paper's "fast recovery" story (restoration answered from immutable
// epoch snapshots, allocation-free on the query path) only holds in
// production if invariants that today live in comments — "Snapshot is
// immutable after publish", "Query is 0 allocs/op", "trees is guarded by
// mu", "onDemand is only touched atomically" — never regress. The
// analyzers turn those comments into machine-checked annotations:
//
//   - immutable  (//rbpc:immutable on a type): fields must not be written
//     outside constructor/build functions.
//   - hotpath    (//rbpc:hotpath on a function): no allocating constructs,
//     and only calls to other hotpath or allowlisted functions.
//   - guardedby  (//rbpc:guardedby mu on a field): accesses only in
//     functions that lock mu (intra-procedural; //rbpc:locked escape).
//   - atomicmix: a field accessed via sync/atomic anywhere must never be
//     accessed non-atomically elsewhere.
//   - lockorder: the module-wide mutex-acquisition graph (built from the
//     lock facts ScanPackage extracts) must be acyclic — no two lock
//     classes ever acquired in both orders.
//   - snapshotescape (//rbpc:epochscoped on a type): epoch-lifetime values
//     may be read anywhere but never stored into fields, globals, or
//     channels outside other epochscoped carriers.
//   - deterministic (//rbpc:deterministic on a function or package
//     clause): no map iteration, wall-clock reads, unseeded randomness,
//     or float formatting — replay-critical code stays bit-reproducible.
//   - allocprove: every //rbpc:hotpath claim cross-checked against the
//     compiler's own escape analysis (go tool compile -m=2), so the
//     no-alloc promise is compiler-verified instead of pattern-matched.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic) but is built on the standard library only,
// because this repository vendors no dependencies. Cross-package
// information (which functions are hotpath, which fields are atomic,
// which guards nest under which) flows through a string-keyed Index
// instead of typed Facts: in whole-module mode (cmd/rbpc-lint ./...) the
// index is built over every package before any analyzer runs; in
// `go vet -vettool` mode it is serialized to the vet facts files.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //rbpc:allow
	// suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant checked.
	Doc string
	// Run reports the analyzer's diagnostics for one package via
	// pass.Report.
	Run func(pass *Pass)
}

// All is the full rbpc-lint suite in reporting order.
var All = []*Analyzer{
	Immutable, Hotpath, GuardedBy, AtomicMix,
	LockOrder, SnapshotEscape, Deterministic, AllocProve,
}

// ByName returns the analyzers matching the given names (in All's order),
// or an error naming the first unknown one.
func ByName(names []string) ([]*Analyzer, error) {
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	var out []*Analyzer
	for _, a := range All {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	for n := range want {
		return nil, fmt.Errorf("unknown checker %q", n)
	}
	return out, nil
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Escape is one escape-analysis verdict parsed from the compiler's
// -m=2 output: a value at File:Line:Col the compiler proved heap-bound.
type Escape struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	// Msg is the compiler's own wording, e.g. "x escapes to heap" or
	// "moved to heap: x".
	Msg string `json:"msg"`
}

// Unit is one package's worth of checkable material: syntax, types, and
// (when the driver ran the compiler) escape-analysis verdicts.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// Escapes holds the compiler's escape-analysis verdicts for the
	// unit's files. nil means escape analysis was not run (allocprove
	// skips); an empty non-nil slice means it ran and proved the unit
	// allocation-clean.
	Escapes []Escape
}

// Pass carries one analyzer's view of one unit.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Escapes mirrors Unit.Escapes (nil when escape analysis wasn't run).
	Escapes []Escape
	// Index holds annotations and facts for this package and every
	// package it can see (the whole module in direct mode, this package
	// plus its dependencies' facts in vettool mode).
	Index *Index

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a //rbpc:allow comment on the
// same source line suppresses this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportPosf(p.Fset.Position(pos), format, args...)
}

// ReportPosf is Reportf for positions that did not come from this pass's
// FileSet (e.g. parsed back out of compiler output or serialized facts).
func (p *Pass) ReportPosf(position token.Position, format string, args ...any) {
	if p.Index.allowed(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunAnalyzers runs each analyzer over the unit and returns the combined
// diagnostics sorted by position and deduplicated.
func RunAnalyzers(analyzers []*Analyzer, u *Unit, idx *Index) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     u.Fset,
			Files:    u.Files,
			Pkg:      u.Pkg,
			Info:     u.Info,
			Escapes:  u.Escapes,
			Index:    idx,
			diags:    &diags,
		}
		a.Run(pass)
	}
	return SortDiags(diags)
}

// SortDiags sorts diagnostics by file, line, column, analyzer, and message,
// and drops exact duplicates. Drivers that aggregate several units (direct
// mode over many packages, a package and its _test variant under go vet)
// funnel everything through here so output never depends on load order.
func SortDiags(diags []Diagnostic) []Diagnostic {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// parsePosString parses a "file:line:col" (or "file:line") string back
// into a token.Position. Serialized facts and compiler output carry
// positions as strings; this is the inverse of Position.String for the
// paths this module produces.
func parsePosString(s string) token.Position {
	pos := token.Position{Filename: s}
	rest := s
	for i := 0; i < 2; i++ {
		c := strings.LastIndexByte(rest, ':')
		if c < 0 {
			break
		}
		n, err := strconv.Atoi(rest[c+1:])
		if err != nil {
			break
		}
		if pos.Line == 0 {
			pos.Line = n
		} else {
			pos.Column = pos.Line
			pos.Line = n
		}
		rest = rest[:c]
		pos.Filename = rest
	}
	return pos
}

// funcBodySpan returns the file and line range of a function body,
// for mapping position-keyed external facts (escape verdicts) back onto
// declarations.
func funcBodySpan(fset *token.FileSet, fd *ast.FuncDecl) (file string, from, to int) {
	start := fset.Position(fd.Pos())
	end := fset.Position(fd.End())
	return start.Filename, start.Line, end.Line
}
