package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SnapshotEscape enforces the epoch-lifetime discipline on types annotated
// //rbpc:epochscoped (engine.Snapshot, the shard merged views): their
// values may be loaded and read anywhere, but they must never be *stored*
// where they could outlive the epoch — package-level variables, fields of
// types that are not themselves epoch-scoped, or channels whose element
// type is not epoch-scoped. This closes statically the torn-view hole the
// chaos oracle only catches dynamically: a stale Snapshot squirreled into
// a long-lived struct serves pre-failure plans after the epoch advanced.
//
// Sanctioned publication points are untouched: atomic.Pointer[T] is the
// epoch hand-off primitive, and its Store is a method call, not a store
// this analyzer polices. Epoch-scoped carriers compose: a field, composite
// literal, or channel of another //rbpc:epochscoped type may hold scoped
// values — the carrier itself is then subject to the same rules.
var SnapshotEscape = &Analyzer{
	Name: "snapshotescape",
	Doc:  "epoch-scoped values must not be stored into long-lived locations",
	Run:  runSnapshotEscape,
}

func runSnapshotEscape(pass *Pass) {
	if len(pass.Index.EpochScoped) == 0 {
		return
	}
	checkScopedDecls(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkScopedAssign(pass, n)
			case *ast.SendStmt:
				checkScopedSend(pass, n)
			case *ast.CompositeLit:
				checkScopedComposite(pass, n)
			}
			return true
		})
	}
}

// epochScoped reports whether t is (or directly carries) an epoch-scoped
// value: the named type itself, or a pointer/slice/array/map of one.
// Channels are conduits, not storage — sends are policed separately — and
// atomic.Pointer is the sanctioned publish primitive. Other named types
// are opaque here: their own declarations are checked where they appear.
func epochScoped(idx *Index, t types.Type) bool {
	for {
		switch u := types.Unalias(t).(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			return epochScoped(idx, u.Key()) || epochScoped(idx, u.Elem())
		case *types.Named:
			return idx.EpochScoped[TypeKey(u.Obj())]
		default:
			return false
		}
	}
}

// checkScopedDecls flags the declaration-level escapes: a package-level
// variable of a scoped-carrying type, and a scoped-carrying field declared
// in a struct that is not itself epoch-scoped.
func checkScopedDecls(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch sp := spec.(type) {
				case *ast.ValueSpec:
					if gd.Tok != token.VAR {
						continue
					}
					for _, name := range sp.Names {
						v, ok := pass.Info.Defs[name].(*types.Var)
						if !ok || v.Parent() != pass.Pkg.Scope() {
							continue
						}
						if epochScoped(pass.Index, v.Type()) {
							pass.Reportf(name.Pos(),
								"package-level variable %s holds epoch-scoped type %s; epoch-scoped values must not outlive their epoch",
								name.Name, v.Type())
						}
					}
				case *ast.TypeSpec:
					tn, ok := pass.Info.Defs[sp.Name].(*types.TypeName)
					if !ok || pass.Index.EpochScoped[TypeKey(tn)] {
						continue
					}
					st, ok := sp.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						ft := pass.Info.TypeOf(field.Type)
						if ft == nil || !epochScoped(pass.Index, ft) {
							continue
						}
						pos := field.Pos()
						if len(field.Names) > 0 {
							pos = field.Names[0].Pos()
						}
						pass.Reportf(pos,
							"field of epoch-scoped type %s declared in non-epoch-scoped struct %s; annotate %s //rbpc:epochscoped or drop the field",
							ft, tn.Name(), tn.Name())
					}
				}
			}
		}
	}
}

func checkScopedAssign(pass *Pass, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		var valType types.Type
		if len(as.Rhs) == len(as.Lhs) {
			valType = pass.Info.TypeOf(as.Rhs[i])
		} else {
			valType = pass.Info.TypeOf(lhs) // multi-value call: trust the target's type
		}
		if valType == nil || !epochScoped(pass.Index, valType) {
			continue
		}
		if loc, bad := longLivedTarget(pass, lhs); bad {
			pass.Reportf(lhs.Pos(),
				"epoch-scoped value of type %s stored into %s; epoch-scoped values must not outlive their epoch",
				valType, loc)
		}
	}
}

// longLivedTarget classifies an assignment target: package-level
// variables and fields of non-epoch-scoped types are long-lived,
// locals and fields of epoch-scoped carriers are not. Index expressions
// inherit the classification of their base.
func longLivedTarget(pass *Pass, lhs ast.Expr) (string, bool) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		v, ok := pass.Info.ObjectOf(l).(*types.Var)
		if ok && v.Parent() == pass.Pkg.Scope() {
			return "package-level variable " + l.Name, true
		}
	case *ast.SelectorExpr:
		sel, ok := pass.Info.Selections[l]
		if ok && sel.Kind() == types.FieldVal {
			if named := namedOf(sel.Recv()); named != nil {
				key := TypeKey(named.Obj())
				if !pass.Index.EpochScoped[key] {
					return "field " + key + "." + l.Sel.Name + " of a non-epoch-scoped type", true
				}
				return "", false
			}
		}
		// pkg.Var selector: a package-level variable of another package.
		if v, ok := pass.Info.Uses[l.Sel].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return "package-level variable " + v.Pkg().Path() + "." + v.Name(), true
		}
	case *ast.IndexExpr:
		return longLivedTarget(pass, l.X)
	}
	return "", false
}

func checkScopedSend(pass *Pass, send *ast.SendStmt) {
	valType := pass.Info.TypeOf(send.Value)
	if valType == nil || !epochScoped(pass.Index, valType) {
		return
	}
	chType := pass.Info.TypeOf(send.Chan)
	if chType == nil {
		return
	}
	ch, ok := chType.Underlying().(*types.Chan)
	if !ok {
		return
	}
	if epochScoped(pass.Index, ch.Elem()) {
		return // a channel of epoch-scoped carriers; receivers share the discipline
	}
	pass.Reportf(send.Pos(),
		"epoch-scoped value of type %s sent on a channel of non-epoch-scoped element type %s",
		valType, ch.Elem())
}

// checkScopedComposite flags a composite literal of a non-epoch-scoped
// named struct type that captures an epoch-scoped value — the sneaky form
// of a field store.
func checkScopedComposite(pass *Pass, lit *ast.CompositeLit) {
	t := pass.Info.TypeOf(lit)
	named := namedOf(t)
	if named == nil {
		return // slice/map/array literals are values; stores are checked at the store
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return
	}
	if pass.Index.EpochScoped[TypeKey(named.Obj())] {
		return
	}
	for _, elt := range lit.Elts {
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		vt := pass.Info.TypeOf(val)
		if vt != nil && epochScoped(pass.Index, vt) {
			pass.Reportf(val.Pos(),
				"epoch-scoped value of type %s captured by composite literal of non-epoch-scoped type %s",
				vt, named.Obj().Name())
		}
	}
}
