package analysis

import (
	"go/ast"
	"go/types"
)

// GuardedBy checks that fields annotated //rbpc:guardedby mu are only
// accessed in functions that lock mu. The check is intra-procedural and
// deliberately simple: a function "locks mu" if its body contains a call
// to Lock, RLock, TryLock, or TryRLock on a selector whose receiver chain
// ends in the guard's name (o.mu.Lock(), s.cache.mu.RLock(), ...). It does
// not prove the lock is held at the access — it proves the function is
// lock-aware at all, which is the regression this codebase actually risks:
// a new helper reading Oracle.trees with no locking anywhere.
//
// Functions annotated //rbpc:locked assert their callers hold the guard
// (the evictOneLocked pattern); constructor/build functions are exempt
// because the value is not yet shared.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "//rbpc:guardedby fields may only be accessed in functions that lock their guard",
	Run:  runGuardedBy,
}

var lockMethodNames = map[string]bool{
	"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true,
}

func runGuardedBy(pass *Pass) {
	if len(pass.Index.Guard) == 0 {
		return
	}
	forEachFunc(pass.Files, pass.Info, func(fn *types.Func, fd *ast.FuncDecl) {
		if pass.Index.Locked[FuncKey(fn)] || pass.Index.IsCtor(fn) {
			return
		}
		locked := lockedGuards(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			key, ok := fieldKey(pass.Info, sel)
			if !ok {
				return true
			}
			guard, guarded := pass.Index.Guard[key]
			if guarded && !locked[guard] {
				pass.Reportf(sel.Sel.Pos(),
					"access to %s without locking its guard %q (annotate //rbpc:locked if the caller holds it)",
					key, guard)
			}
			return true
		})
	})
}

// lockedGuards returns the guard names the function body acquires.
func lockedGuards(body *ast.BlockStmt) map[string]bool {
	locked := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		method, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !lockMethodNames[method.Sel.Name] {
			return true
		}
		switch recv := ast.Unparen(method.X).(type) {
		case *ast.SelectorExpr:
			locked[recv.Sel.Name] = true
		case *ast.Ident:
			locked[recv.Name] = true
		}
		return true
	})
	return locked
}
