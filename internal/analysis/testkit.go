package analysis

import (
	"fmt"
	"go/importer"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// RunFixture is this package's miniature analysistest: it loads the
// fixture package in testdata/src/<name>, runs the analyzers over it, and
// matches the diagnostics against `// want "regexp"` comments, exactly
// like golang.org/x/tools/go/analysis/analysistest:
//
//   - every diagnostic must land on a line carrying a want comment whose
//     pattern matches the message, and
//   - every want comment must be matched by some diagnostic.
//
// Fixture packages import only the standard library, which is typechecked
// from GOROOT source, so fixture tests need no build cache or network.
func RunFixture(t *testing.T, fixtureDir string, analyzers ...*Analyzer) {
	t.Helper()

	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		t.Fatalf("no .go files in %s", fixtureDir)
	}
	sort.Strings(goFiles)

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, err := CheckPackage(fset, imp, "fixture", fixtureDir, goFiles)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}

	// The allocprove fixture needs compiler ground truth; its sources are
	// import-free so `go tool compile` runs without an importcfg.
	var escapes []Escape
	for _, a := range analyzers {
		if a == AllocProve {
			escapes, err = CollectEscapes(EscapeConfig{
				Dir: fixtureDir, ImportPath: "fixture", GoFiles: goFiles,
			})
			if err != nil {
				t.Fatalf("collecting escapes: %v", err)
			}
		}
	}

	idx := NewIndex()
	ScanPackage(fset, pkg.Files, pkg.Info, idx)
	diags := RunAnalyzers(analyzers, &Unit{
		Fset: fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info, Escapes: escapes,
	}, idx)

	wants := collectWants(t, fset, fixtureDir, goFiles)
	matched := make([]bool, len(wants))

	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s (%s)",
				filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message, d.Analyzer)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("no diagnostic matched want %q at %s:%d", w.re, w.file, w.line)
		}
	}
}

type wantComment struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// collectWants parses `// want "re"` comments. Multiple want clauses on
// one line each expect a separate diagnostic.
func collectWants(t *testing.T, fset *token.FileSet, dir string, goFiles []string) []wantComment {
	t.Helper()
	var wants []wantComment
	for _, gf := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, gf), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s for want comments: %v", gf, err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					pat, err := unquoteWant(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", gf, m[1], err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", gf, pat, err)
					}
					wants = append(wants, wantComment{
						file: gf,
						line: fset.Position(c.Pos()).Line,
						re:   re,
					})
				}
			}
		}
	}
	return wants
}

// unquoteWant undoes the \" escaping the want pattern needed to sit
// inside a quoted string; other backslash sequences (regexp escapes) pass
// through untouched.
func unquoteWant(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			if i+1 >= len(s) {
				return "", fmt.Errorf("trailing backslash")
			}
			if s[i+1] == '"' {
				i++
			}
		}
		b.WriteByte(s[i])
	}
	return b.String(), nil
}
