package analysis

import (
	"sort"
)

// LockOrder checks that the module-wide mutex-acquisition graph is
// acyclic. ScanPackage records, per function, every acquisition site, every
// direct nested acquisition (guard B taken while guard A held), and every
// module-local call made while a guard was held; this analyzer closes the
// acquisition sets over the call graph, expands held-calls into
// acquired-while-held edges, and reports every edge that participates in a
// cycle — i.e. two lock classes acquired in both orders somewhere in the
// module, the coordinator↔shard↔engine deadlock shape.
//
// Guards are lock *classes* (pkg.Type.field, pkg.Type for embedded
// mutexes, pkg.name for globals), so a cycle of length one — a class
// acquired while an instance of the same class is held — is also reported:
// two instances locked in data-dependent order is the classic AB/BA
// deadlock, and a canonical acquisition order must be made explicit.
//
// Each edge is reported in the package that owns the *inner* acquisition
// site, so vet units and whole-module mode produce the same findings
// without duplication.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutex acquisition graph must be acyclic across the module",
	Run:  runLockOrder,
}

// lockOrderEdge is one resolved acquired-while-held relation, with the
// call chain hop (Via) when the inner acquisition happens in a callee.
type lockOrderEdge struct {
	outer, outerPos string
	inner, innerPos string
	via             string // call position for held-call edges, "" for direct
}

func runLockOrder(pass *Pass) {
	edges := lockOrderEdges(pass.Index)
	if len(edges) == 0 {
		return
	}

	adj := map[string][]lockOrderEdge{}
	for _, e := range edges {
		adj[e.outer] = append(adj[e.outer], e)
	}

	// Report each cycle-closing edge whose inner acquisition site lives in
	// this pass's files, once per ordered guard pair.
	own := map[string]bool{}
	for _, f := range pass.Files {
		own[pass.Fset.Position(f.Pos()).Filename] = true
	}
	reported := map[[2]string]bool{}
	for _, e := range edges {
		if !own[posFile(e.innerPos)] || reported[[2]string{e.outer, e.inner}] {
			continue
		}
		back, ok := lockOrderPath(adj, e.inner, e.outer)
		if !ok {
			continue
		}
		reported[[2]string{e.outer, e.inner}] = true
		pos := parsePosString(e.innerPos)
		how := ""
		if e.via != "" {
			how = " (via call at " + e.via + ")"
		}
		pass.ReportPosf(pos,
			"lock order cycle: %s acquired here while %s is held (since %s)%s, but the reverse order %s → %s is committed at %s",
			e.inner, e.outer, e.outerPos, how, e.inner, e.outer, back.innerPos)
	}
}

// lockOrderEdges resolves the index's raw lock facts into concrete
// acquired-while-held edges: the direct ones, plus held-calls expanded
// against the callees' transitive acquisition sets.
func lockOrderEdges(idx *Index) []lockOrderEdge {
	var edges []lockOrderEdge
	for _, e := range idx.LockEdges {
		edges = append(edges, lockOrderEdge{
			outer: e.Outer, outerPos: e.OuterPos,
			inner: e.Inner, innerPos: e.InnerPos,
		})
	}

	// Close each function's may-acquire set over module-local calls.
	acq := map[string]map[string]string{} // func → guard → example site
	for fn, sites := range idx.Acquires {
		m := map[string]string{}
		for _, s := range sites {
			if _, ok := m[s.Guard]; !ok {
				m[s.Guard] = s.Pos
			}
		}
		acq[fn] = m
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range idx.LockCalls {
			for _, c := range callees {
				for g, pos := range acq[c] {
					m := acq[fn]
					if m == nil {
						m = map[string]string{}
						acq[fn] = m
					}
					if _, ok := m[g]; !ok {
						m[g] = pos
						changed = true
					}
				}
			}
		}
	}

	for _, hc := range idx.HeldCalls {
		guards := acq[hc.Callee]
		names := make([]string, 0, len(guards))
		for g := range guards {
			names = append(names, g)
		}
		sort.Strings(names)
		for _, g := range names {
			edges = append(edges, lockOrderEdge{
				outer: hc.Guard, outerPos: hc.GuardPos,
				inner: g, innerPos: guards[g],
				via: hc.CallPos,
			})
		}
	}

	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.outer != b.outer {
			return a.outer < b.outer
		}
		if a.inner != b.inner {
			return a.inner < b.inner
		}
		return a.innerPos < b.innerPos
	})
	return edges
}

// lockOrderPath reports whether guard `to` is reachable from guard `from`
// in the edge graph, returning the final edge of one such path (the
// counter-witness: where `to` is acquired while something on the path from
// `from` is held).
func lockOrderPath(adj map[string][]lockOrderEdge, from, to string) (lockOrderEdge, bool) {
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range adj[g] {
			if e.inner == to {
				return e, true
			}
			if !seen[e.inner] {
				seen[e.inner] = true
				stack = append(stack, e.inner)
			}
		}
	}
	return lockOrderEdge{}, false
}

// posFile extracts the filename from a "file:line:col" position string.
func posFile(pos string) string {
	p := parsePosString(pos)
	return p.Filename
}
