package trace

import (
	"strings"
	"testing"

	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	rbpcint "rbpc/internal/rbpc"
	"rbpc/internal/topology"
)

func TestTraceHealthyRoute(t *testing.T) {
	s, err := rbpcint.NewSystem(topology.Ring(5), rbpcint.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res := Route(s.Net(), 0, 2)
	if !res.Delivered {
		t.Fatalf("not delivered: %s", res.Reason)
	}
	// 2-hop route: self-resolve at 0, swap at 1, pop at 2 = 3 operations.
	if len(res.Steps) != 3 {
		t.Errorf("steps = %d, want 3", len(res.Steps))
	}
	last := res.Steps[len(res.Steps)-1]
	if last.Router != 2 || len(last.Out) != 0 {
		t.Errorf("last step should pop at 2: %+v", last)
	}
	var sb strings.Builder
	Write(&sb, s.Net(), res)
	out := sb.String()
	for _, want := range []string{"DELIVERED", "pop", "swap"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTraceConcatenatedRoute(t *testing.T) {
	g := topology.Ring(6)
	s, err := rbpcint.NewSystem(g, rbpcint.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := g.FindEdge(0, 1)
	s.FailLink(e)
	res := Route(s.Net(), 0, 1)
	if !res.Delivered {
		t.Fatalf("restored route not delivered: %s", res.Reason)
	}
	// The detour is 5 hops the long way around.
	hops := 0
	for _, st := range res.Steps {
		if st.OutEdge != mpls.LocalProcess {
			hops++
		}
	}
	if hops != 5 {
		t.Errorf("traced %d link crossings, want 5", hops)
	}
}

func TestTraceStopsAtDeadLink(t *testing.T) {
	g := topology.Ring(5)
	s, err := rbpcint.NewSystem(g, rbpcint.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := g.FindEdge(0, 1)
	s.FailDataPlane(e) // no restoration
	res := Route(s.Net(), 0, 1)
	if res.Delivered {
		t.Fatal("trace crossed a dead link")
	}
	if !strings.Contains(res.Reason, "down") {
		t.Errorf("reason = %q", res.Reason)
	}
	var sb strings.Builder
	Write(&sb, s.Net(), res)
	if !strings.Contains(sb.String(), "STOPPED") {
		t.Error("render missing STOPPED")
	}
}

func TestTraceLocalPatchShowsPush(t *testing.T) {
	// An edge-bypass patch installs a swap+push row; the trace must
	// render the multi-label operation.
	g := topology.Ring(5)
	s, err := rbpcint.NewSystem(g, rbpcint.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := g.FindEdge(0, 1)
	s.FailDataPlane(e)
	if _, _, err := s.LocalPatch(e, rbpcint.EdgeBypass); err != nil {
		t.Fatal(err)
	}
	res := Route(s.Net(), 0, 1)
	if !res.Delivered {
		t.Fatalf("bypassed trace not delivered: %s", res.Reason)
	}
	var sb strings.Builder
	Write(&sb, s.Net(), res)
	if !strings.Contains(sb.String(), "swap+push [") {
		t.Errorf("trace missing multi-push rendering:\n%s", sb.String())
	}
}

func TestTraceMissingFEC(t *testing.T) {
	net := mpls.NewNetwork(topology.Line(3))
	res := Route(net, 0, 2)
	if res.Delivered || !strings.Contains(res.Reason, "no FEC") {
		t.Errorf("res = %+v", res)
	}
}

func TestTraceLoopBounded(t *testing.T) {
	g := graph.New(2)
	e := g.AddEdge(0, 1, 1)
	net := mpls.NewNetwork(g)
	lsp, _ := net.EstablishLSP(graph.Path{Nodes: []graph.NodeID{0, 1}, Edges: []graph.EdgeID{e}})
	in, _ := lsp.IncomingLabelAt(1)
	net.ReplaceILM(1, in, mpls.ILMEntry{Out: []mpls.Label{lsp.SelfLabel()}, OutEdge: e})
	net.SetFEC(0, 1, mpls.FECEntry{Stack: []mpls.Label{lsp.SelfLabel()}, OutEdge: mpls.LocalProcess})
	res := Route(net, 0, 1)
	if res.Delivered {
		t.Fatal("looping route delivered")
	}
	if len(res.Steps) != maxSteps {
		t.Errorf("steps = %d, want bound %d", len(res.Steps), maxSteps)
	}
}
