// Package trace renders per-hop label-operation traces of routes through
// an MPLS network — the reproduction's traceroute. Where the verifier
// (internal/verify) answers "is the table state sound", the tracer shows
// an operator *what the tables actually do* to a packet: every lookup,
// swap, push and pop, annotated with the router and link.
package trace

import (
	"fmt"
	"io"
	"strings"

	"rbpc/internal/graph"
	"rbpc/internal/mpls"
)

// Step is one label operation applied to the traced packet.
type Step struct {
	Router graph.NodeID
	// InLabel is the label that was looked up (the top of stack).
	InLabel mpls.Label
	// Out is what replaced it (empty = pop).
	Out []mpls.Label
	// OutEdge is the link the packet left on (LocalProcess = stayed).
	OutEdge graph.EdgeID
	// StackAfter is the full stack after the operation, bottom first.
	StackAfter []mpls.Label
}

// Result is a complete trace.
type Result struct {
	Src, Dst graph.NodeID
	Steps    []Step
	// Delivered reports whether the packet popped out at Dst.
	Delivered bool
	// Reason is the human-readable stop cause when not delivered.
	Reason string
}

// maxSteps bounds runaway traces (the verifier finds true loops; the
// tracer just refuses to print forever).
const maxSteps = 512

// Route traces the installed route for (src, dst) through the tables.
func Route(net *mpls.Network, src, dst graph.NodeID) Result {
	res := Result{Src: src, Dst: dst}
	fe, ok := net.Router(src).FECEntryFor(dst)
	if !ok {
		res.Reason = "no FEC entry at the ingress"
		return res
	}
	at := src
	stack := append([]mpls.Label(nil), fe.Stack...)
	g := net.Graph()

	if fe.OutEdge != mpls.LocalProcess {
		if !net.EdgeUp(fe.OutEdge) {
			res.Reason = fmt.Sprintf("ingress link %d is down", fe.OutEdge)
			return res
		}
		at = g.Edge(fe.OutEdge).Other(at)
	}

	for len(res.Steps) < maxSteps {
		if len(stack) == 0 {
			res.Delivered = at == dst
			if !res.Delivered {
				res.Reason = fmt.Sprintf("stack empty at router %d, wanted %d", at, dst)
			}
			return res
		}
		top := stack[len(stack)-1]
		entry, ok := net.Router(at).ILMEntryFor(top)
		if !ok {
			res.Reason = fmt.Sprintf("router %d has no row for label %d", at, top)
			return res
		}
		stack = stack[:len(stack)-1]
		stack = append(stack, entry.Out...)
		res.Steps = append(res.Steps, Step{
			Router:     at,
			InLabel:    top,
			Out:        entry.Out,
			OutEdge:    entry.OutEdge,
			StackAfter: append([]mpls.Label(nil), stack...),
		})
		if entry.OutEdge != mpls.LocalProcess {
			if !net.EdgeUp(entry.OutEdge) {
				res.Reason = fmt.Sprintf("link %d down at router %d", entry.OutEdge, at)
				return res
			}
			at = g.Edge(entry.OutEdge).Other(at)
		}
	}
	res.Reason = "trace exceeded step bound (loop?)"
	return res
}

// Write renders the trace for humans.
func Write(w io.Writer, net *mpls.Network, res Result) {
	status := "DELIVERED"
	if !res.Delivered {
		status = "STOPPED: " + res.Reason
	}
	fmt.Fprintf(w, "trace %d -> %d (%s)\n", res.Src, res.Dst, status)
	for i, s := range res.Steps {
		op := describeOp(s)
		where := "local"
		if s.OutEdge != mpls.LocalProcess {
			e := net.Graph().Edge(s.OutEdge)
			where = fmt.Sprintf("link %d to %d", s.OutEdge, e.Other(s.Router))
		}
		fmt.Fprintf(w, "  %2d. router %-3d label %-5d %-22s -> %-14s stack %s\n",
			i+1, s.Router, s.InLabel, op, where, stackString(s.StackAfter))
	}
}

func describeOp(s Step) string {
	switch len(s.Out) {
	case 0:
		return "pop"
	case 1:
		return fmt.Sprintf("swap to %d", s.Out[0])
	default:
		parts := make([]string, len(s.Out))
		for i, l := range s.Out {
			parts[i] = fmt.Sprintf("%d", l)
		}
		return "swap+push [" + strings.Join(parts, " ") + "]"
	}
}

func stackString(stack []mpls.Label) string {
	if len(stack) == 0 {
		return "(empty)"
	}
	parts := make([]string, len(stack))
	for i, l := range stack {
		parts[i] = fmt.Sprintf("%d", l)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
