package paths

import (
	"rbpc/internal/graph"
)

// LiveIndex maintains, per source, the cost-sorted candidate columns of a
// CostIndex filtered down to the paths that survive the current set of
// failed edges. It is the persistent-across-epochs form of the solver's
// dead-path mask: instead of rebuilding a Len()-sized mask every epoch and
// testing one bit per candidate inside the Dijkstra scan, the filtering is
// done once per epoch — and only for the sources a burst actually touched.
// Untouched sources keep sharing the CostIndex's own columns (a pure
// alias, no copy), so a quiet epoch costs O(paths through the delta edges)
// regardless of base-set size.
//
// Ownership model: a LiveIndex is owned by a single writer (the engine's
// publish loop), which applies each epoch's failure delta with Update
// before fanning out solve workers; during the fan-out it is read-only and
// safe to share across workers. It models edge failures only — callers
// whose failure views remove nodes must not install it.
type LiveIndex struct {
	ex *Explicit
	ci *CostIndex

	baseOff   []int32
	baseCosts []float64
	baseDsts  []int32
	// baseKeys is the identity key column: baseKeys[k] == k. Clean sources
	// alias it so every source — filtered or not — presents the same
	// (costs, dsts, keys) triple shape to the solver.
	baseKeys []int32

	// Per-source live segments. A clean source (no dead candidate) aliases
	// the base columns; a dirty source owns filtered copies.
	costs [][]float64
	dsts  [][]int32
	keys  [][]int32

	// deadEdges[i] counts currently-failed edges on stored path i; the path
	// is dead iff the count is nonzero. srcDead[u] counts dead paths out of
	// u; a source re-aliases the base columns when it returns to zero.
	deadEdges []int32
	srcDead   []int32

	// own{Costs,Dsts,Keys}[u] hold a dirty source's last owned segments so
	// refiltering reuses their capacity instead of reallocating per epoch.
	ownCosts [][]float64
	ownDsts  [][]int32
	ownKeys  [][]int32

	// edgeOK caches Explicit.EdgeComplete at construction (the set is
	// immutable): live filtering keeps a 1-hop path exactly while its edge
	// is up, so the attestation survives every Update.
	edgeOK bool
}

// NewLiveIndex builds a LiveIndex over b and its cost index with no edges
// failed: every source starts clean, aliasing ci's columns.
//
//rbpc:ctor
func NewLiveIndex(b *Explicit, ci *CostIndex) *LiveIndex {
	n := ci.Order()
	off, costs, dsts, _ := ci.Columns()
	li := &LiveIndex{
		ex:        b,
		ci:        ci,
		baseOff:   off,
		baseCosts: costs,
		baseDsts:  dsts,
		baseKeys:  make([]int32, ci.Len()),
		costs:     make([][]float64, n),
		dsts:      make([][]int32, n),
		keys:      make([][]int32, n),
		deadEdges: make([]int32, b.Len()),
		srcDead:   make([]int32, n),
		ownCosts:  make([][]float64, n),
		ownDsts:   make([][]int32, n),
		ownKeys:   make([][]int32, n),
	}
	for k := range li.baseKeys {
		li.baseKeys[k] = int32(k)
	}
	for u := 0; u < n; u++ {
		li.alias(graph.NodeID(u))
	}
	li.edgeOK = b.EdgeComplete()
	return li
}

// EdgeComplete reports whether every usable arc of the base view is
// shadowed by a live same-cost 1-hop base path (see Explicit.EdgeComplete).
// Solvers use it to skip the raw-edge candidate scan outright.
//
//rbpc:hotpath
func (li *LiveIndex) EdgeComplete() bool { return li.edgeOK }

// alias points source u's live segments at the unfiltered base columns.
func (li *LiveIndex) alias(u graph.NodeID) {
	lo, hi := li.baseOff[u], li.baseOff[u+1]
	li.costs[u] = li.baseCosts[lo:hi]
	li.dsts[u] = li.baseDsts[lo:hi]
	li.keys[u] = li.baseKeys[lo:hi]
}

// Update applies one epoch's failure delta: newlyDown edges just failed,
// repaired edges just restored. The cumulative down-set after all Updates
// must equal the removed-edge set of the failure view the solvers run
// against (and that view must remove no nodes). Only sources owning a path
// through a delta edge are refiltered; the rest keep their segments as-is.
func (li *LiveIndex) Update(newlyDown, repaired []graph.EdgeID) {
	if len(newlyDown) == 0 && len(repaired) == 0 {
		return
	}
	// touched collects the sources whose dead-path population changed.
	var touched []graph.NodeID
	mark := func(u graph.NodeID) {
		for _, t := range touched {
			if t == u {
				return
			}
		}
		touched = append(touched, u)
	}
	for _, e := range newlyDown {
		for _, idx := range li.ex.IndicesThroughEdge(e) {
			li.deadEdges[idx]++
			if li.deadEdges[idx] == 1 {
				u := li.ex.SourceOf(idx)
				li.srcDead[u]++
				mark(u)
			}
		}
	}
	for _, e := range repaired {
		for _, idx := range li.ex.IndicesThroughEdge(e) {
			li.deadEdges[idx]--
			if li.deadEdges[idx] == 0 {
				u := li.ex.SourceOf(idx)
				li.srcDead[u]--
				mark(u)
			}
		}
	}
	for _, u := range touched {
		if li.srcDead[u] == 0 {
			li.alias(u)
			continue
		}
		li.refilter(u)
	}
}

// refilter rebuilds u's owned live segments from the base columns, keeping
// only candidates whose path has no failed edge. Candidate order (ascending
// cost, insertion index) is preserved, so a solver scanning the filtered
// segment makes exactly the relaxations the dead-mask scan would.
func (li *LiveIndex) refilter(u graph.NodeID) {
	lo, hi := li.baseOff[u], li.baseOff[u+1]
	cs := li.ownCosts[u][:0]
	ds := li.ownDsts[u][:0]
	ks := li.ownKeys[u][:0]
	_, _, _, idx := li.ci.Columns()
	for k := lo; k < hi; k++ {
		if li.deadEdges[idx[k]] != 0 {
			continue
		}
		cs = append(cs, li.baseCosts[k])
		ds = append(ds, li.baseDsts[k])
		ks = append(ks, k)
	}
	li.ownCosts[u], li.ownDsts[u], li.ownKeys[u] = cs, ds, ks
	li.costs[u], li.dsts[u], li.keys[u] = cs, ds, ks
}

// LiveFromSource returns u's live candidate columns: parallel slices of
// base-view cost, path destination, and CostIndex flat position (for
// PathAt), sorted ascending by (cost, insertion index). Shared index state —
// callers must not modify or retain past the next Update.
//
//rbpc:hotpath
func (li *LiveIndex) LiveFromSource(u graph.NodeID) (costs []float64, dsts []int32, keys []int32) {
	return li.costs[u], li.dsts[u], li.keys[u]
}

// PathAt returns the path of the candidate with key k (a CostIndex flat
// position, as returned in LiveFromSource's keys column).
//
//rbpc:hotpath
func (li *LiveIndex) PathAt(k int32) graph.Path { return li.ci.PathAt(k) }

// DeadPaths reports how many stored paths are currently dead — telemetry
// for tests asserting the index tracks the failure state.
func (li *LiveIndex) DeadPaths() int {
	n := 0
	for _, c := range li.deadEdges {
		if c != 0 {
			n++
		}
	}
	return n
}
