// Package paths defines base sets of paths — the pre-provisioned LSPs that
// restoration by path concatenation draws from — and the operations the
// paper performs on them: canonical per-pair selection, subpath closure,
// and the Corollary-4 edge extension.
//
// Base sets come in two flavors:
//
//   - Implicit sets answer membership and lookup queries through a
//     shortest-path oracle without materializing any path. They scale to
//     the paper's 40k-node Internet topology.
//   - Explicit sets store every path and maintain inverted indexes
//     (edge -> paths, node -> paths) used by the ILM accounting and the
//     FEC-update planner on ISP-sized networks.
package paths

import (
	"rbpc/internal/graph"
	"rbpc/internal/spath"
)

// Base is a set of base paths over an original (unfailed) network view.
//
// Contains assumes p is structurally valid in View() (see graph.Path.
// Validate); it only decides set membership.
type Base interface {
	// Contains reports whether p belongs to the base set.
	Contains(p graph.Path) bool
	// Between returns the canonical base path from s to d, if the set has
	// one.
	Between(s, d graph.NodeID) (graph.Path, bool)
	// View returns the original network view the paths live in.
	View() graph.View
}

// AllShortest is the implicit base set containing every shortest path of
// the original network. This is the base set of the paper's main
// experiments ("the set of basic paths corresponds to all-pairs shortest
// paths"): membership is simply "is p a shortest path", and the canonical
// path per pair is the oracle's deterministic tree path.
//
// AllShortest is subpath-closed (every subpath of a shortest path is a
// shortest path), which is what makes the greedy largest-prefix
// decomposition optimal.
type AllShortest struct {
	o *spath.Oracle
}

// NewAllShortest returns the all-shortest-paths base set over v.
func NewAllShortest(v graph.View) *AllShortest {
	return &AllShortest{o: spath.NewOracle(v)}
}

// NewAllShortestOracle returns the all-shortest-paths base set sharing an
// existing oracle (and its memoized trees and eviction policy).
func NewAllShortestOracle(o *spath.Oracle) *AllShortest {
	return &AllShortest{o: o}
}

// Oracle exposes the underlying distance oracle (shared by evaluation code
// to avoid recomputing trees).
func (b *AllShortest) Oracle() *spath.Oracle { return b.o }

// Contains implements Base.
func (b *AllShortest) Contains(p graph.Path) bool { return b.o.IsShortest(p) }

// Between implements Base.
func (b *AllShortest) Between(s, d graph.NodeID) (graph.Path, bool) {
	return b.o.Path(s, d)
}

// View implements Base.
func (b *AllShortest) View() graph.View { return b.o.View() }

// UniqueShortest is the implicit base set of Theorem 3: exactly one
// shortest path per pair, selected by infinitesimal padding of the edge
// weights. Because padded shortest paths are unique, the set is
// automatically subpath-closed, so both decomposition strategies apply.
//
// The padded weights are used only for selection; all reported costs remain
// the true weights of the original view.
type UniqueShortest struct {
	orig   graph.View
	padded *spath.Oracle
}

// NewUniqueShortest returns the padded-unique base set over g.
func NewUniqueShortest(g *graph.Graph) *UniqueShortest {
	return &UniqueShortest{
		orig:   g,
		padded: spath.NewOracle(spath.Padded(g, spath.PaddingFor(g))),
	}
}

// NewUniqueShortestView is like NewUniqueShortest for an arbitrary view
// with a caller-chosen padding magnitude.
func NewUniqueShortestView(v graph.View, eps float64) *UniqueShortest {
	return &UniqueShortest{
		orig:   v,
		padded: spath.NewOracle(spath.Padded(v, eps)),
	}
}

// Contains implements Base: p must be the unique padded-shortest path
// between its endpoints.
func (b *UniqueShortest) Contains(p graph.Path) bool {
	return b.padded.IsShortest(p)
}

// Between implements Base.
func (b *UniqueShortest) Between(s, d graph.NodeID) (graph.Path, bool) {
	return b.padded.Path(s, d)
}

// View implements Base, returning the original (unpadded) view.
func (b *UniqueShortest) View() graph.View { return b.orig }

// PaddedOracle exposes the padded selection oracle, used by the sparse
// decomposer to rank candidate base paths.
func (b *UniqueShortest) PaddedOracle() *spath.Oracle { return b.padded }

var (
	_ Base = (*AllShortest)(nil)
	_ Base = (*UniqueShortest)(nil)
)

// Survives reports whether path p avoids every failure in the view: all of
// its edges are usable (neither the edge nor its endpoints failed). Whole
// graphs (no failures) always report true for valid paths.
func Survives(p graph.Path, fv *graph.FailureView) bool {
	for _, e := range p.Edges {
		if !fv.EdgeUsable(e) {
			return false
		}
	}
	// A trivial path survives iff its single node does.
	return fv.NodeUsable(p.Src()) && fv.NodeUsable(p.Dst())
}
