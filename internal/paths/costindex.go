package paths

import (
	"sort"

	"rbpc/internal/graph"
)

// CostIndex is a compact, CSR-packed view of an Explicit's by-source
// candidate lists re-sorted by ascending base-view cost. It exists for the
// online engine's bounded base-path Dijkstra (core.SparseSolver): when the
// true post-failure distances are known, a cost-sorted candidate scan can
// stop at the first candidate that already exceeds the remaining bound,
// turning the O(n) per-node scan of a dense base set into a handful of
// probes.
//
// The packed layout (one offsets array, one flat SourcePath array) keeps
// the per-node candidate walk on two cache-friendly slices instead of a
// map of per-node slices. A CostIndex is immutable after construction and
// safe for concurrent use; it shares the Explicit's path values (which are
// themselves immutable once the set is built).
//
//rbpc:immutable
type CostIndex struct {
	off   []int32 // off[u]..off[u+1] bounds u's candidates in flat
	flat  []SourcePath
	costs []float64 // structure-of-arrays mirror of flat: flat[k].Cost
	dsts  []int32   // flat[k].Path.Dst()
	idx   []int32   // flat[k].Index (the dead-mask index)
	order int
}

// NewCostIndex builds the cost-sorted index for b. Candidates of each
// source are ordered by (Cost, Index): cost for the bounded scan's early
// exit, insertion index as the deterministic tie-breaker so consumers get
// a stable candidate order for a given base set.
//
//rbpc:ctor
func NewCostIndex(b *Explicit) *CostIndex {
	n := b.View().Order()
	ci := &CostIndex{
		off:   make([]int32, n+1),
		flat:  make([]SourcePath, 0, b.Len()),
		order: n,
	}
	for u := 0; u < n; u++ {
		cands := b.FromSource(graph.NodeID(u))
		start := len(ci.flat)
		ci.flat = append(ci.flat, cands...)
		seg := ci.flat[start:]
		sort.Slice(seg, func(i, j int) bool {
			if seg[i].Cost != seg[j].Cost {
				return seg[i].Cost < seg[j].Cost
			}
			return seg[i].Index < seg[j].Index
		})
		ci.off[u+1] = int32(len(ci.flat))
	}
	// Hot columns for the bounded scan: the per-candidate fields the scan
	// rejects on (cost, dead-mask index, destination) packed as flat
	// parallel arrays, so a scan touches 16 bytes per candidate instead of
	// a full SourcePath plus a pointer chase into its node slice. The Path
	// itself is fetched via PathAt only for candidates that survive.
	ci.costs = make([]float64, len(ci.flat))
	ci.dsts = make([]int32, len(ci.flat))
	ci.idx = make([]int32, len(ci.flat))
	for k, sp := range ci.flat {
		ci.costs[k] = sp.Cost
		ci.dsts[k] = int32(sp.Path.Dst())
		ci.idx[k] = int32(sp.Index)
	}
	return ci
}

// Columns exposes the structure-of-arrays hot columns: off[u]..off[u+1]
// bounds node u's candidates; costs/dsts/idx are indexed by that flat
// position and hold each candidate's base-view cost, path destination,
// and dead-mask index. All four slices are shared index state — callers
// must not modify them.
//
//rbpc:hotpath
func (ci *CostIndex) Columns() (off []int32, costs []float64, dsts []int32, idx []int32) {
	return ci.off, ci.costs, ci.dsts, ci.idx
}

// PathAt returns the path of the candidate at flat position k (the
// indexing Columns uses).
//
//rbpc:hotpath
func (ci *CostIndex) PathAt(k int32) graph.Path { return ci.flat[k].Path }

// Order returns the order of the base set's view.
func (ci *CostIndex) Order() int { return ci.order }

// Len returns the total number of indexed candidates.
func (ci *CostIndex) Len() int { return len(ci.flat) }

// FromSourceByCost returns u's stored paths sorted by ascending (Cost,
// Index). The returned slice is shared index state: callers must not
// modify it.
//
//rbpc:hotpath
func (ci *CostIndex) FromSourceByCost(u graph.NodeID) []SourcePath {
	return ci.flat[ci.off[u]:ci.off[u+1]]
}
