package paths

import (
	"math/rand"
	"testing"

	"rbpc/internal/graph"
)

func TestCostIndexSortedAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomConnected(rng, 12, 20, 4)
	var sources []graph.NodeID
	for i := 0; i < g.Order(); i++ {
		sources = append(sources, graph.NodeID(i))
	}
	ex := Corollary4Extend(FromSources(NewAllShortest(g), sources), g)
	ci := NewCostIndex(ex)
	if ci.Order() != g.Order() {
		t.Fatalf("Order = %d, want %d", ci.Order(), g.Order())
	}
	total := 0
	for u := 0; u < g.Order(); u++ {
		sorted := ci.FromSourceByCost(graph.NodeID(u))
		orig := ex.FromSource(graph.NodeID(u))
		if len(sorted) != len(orig) {
			t.Fatalf("node %d: %d sorted candidates, want %d", u, len(sorted), len(orig))
		}
		total += len(sorted)
		seen := make(map[int]bool, len(orig))
		for i, sp := range sorted {
			if sp.Path.Src() != graph.NodeID(u) {
				t.Fatalf("node %d: candidate %d starts at %d", u, i, sp.Path.Src())
			}
			if i > 0 {
				prev := sorted[i-1]
				if sp.Cost < prev.Cost || (sp.Cost == prev.Cost && sp.Index < prev.Index) {
					t.Fatalf("node %d: candidates %d,%d out of (Cost,Index) order", u, i-1, i)
				}
			}
			seen[sp.Index] = true
		}
		for _, sp := range orig {
			if !seen[sp.Index] {
				t.Fatalf("node %d: candidate index %d missing from cost index", u, sp.Index)
			}
		}
	}
	if ci.Len() != total || ci.Len() != ex.Len() {
		t.Errorf("Len = %d, want %d (= set size %d)", ci.Len(), total, ex.Len())
	}
}

func TestDeadUnderIntoReusesScratch(t *testing.T) {
	g := square()
	ex := FromSources(NewAllShortest(g), []graph.NodeID{0, 1, 2, 3})
	fv := graph.FailEdges(g, 0)
	want := ex.DeadUnder(fv)

	scratch := make([]bool, ex.Len())
	for i := range scratch {
		scratch[i] = true // stale garbage the call must clear
	}
	got := ex.DeadUnderInto(fv, scratch)
	if &got[0] != &scratch[0] {
		t.Error("DeadUnderInto did not reuse the provided scratch")
	}
	if len(got) != len(want) {
		t.Fatalf("mask length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mask[%d] = %v, want %v", i, got[i], want[i])
		}
	}

	// Undersized scratch: must allocate, not panic or truncate.
	small := ex.DeadUnderInto(fv, make([]bool, 0, 1))
	for i := range want {
		if small[i] != want[i] {
			t.Fatalf("fresh mask[%d] = %v, want %v", i, small[i], want[i])
		}
	}
}
