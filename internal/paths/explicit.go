package paths

import (
	"fmt"
	"sort"

	"rbpc/internal/graph"
	"rbpc/internal/spath"
)

// pairKey identifies an ordered source-destination pair.
type pairKey struct{ s, d graph.NodeID }

// Explicit is a materialized base set with inverted indexes. It powers the
// ILM-table accounting (how many LSPs traverse each router) and the
// source-router FEC-update planner (which base paths a link failure
// breaks).
//
// Once populated (Add is the build phase), an Explicit is read-only: every
// consumer — decomposers, planners, evaluation fan-outs — shares it
// concurrently without locking.
//
//rbpc:immutable
type Explicit struct {
	view graph.View

	paths     []graph.Path
	byKey     map[string]int
	byPair    map[pairKey]int // canonical (first added) path per ordered pair
	byPairAll map[pairKey][]int
	byEdge    map[graph.EdgeID][]int
	byNode    map[graph.NodeID][]int // paths visiting the node (incl. endpoints)
	bySrc     map[graph.NodeID][]SourcePath
}

// SourcePath is one entry of the by-source index: a stored path plus its
// cost in the base view, precomputed so hot consumers (the sparse
// decomposer's Dijkstra) never rescan edges to price a candidate. Index is
// the path's position in the set (stable; see DeadUnder).
type SourcePath struct {
	Path  graph.Path
	Cost  float64
	Index int
}

// NewExplicit returns an empty explicit base set over v.
func NewExplicit(v graph.View) *Explicit {
	return &Explicit{
		view:      v,
		byKey:     make(map[string]int),
		byPair:    make(map[pairKey]int),
		byPairAll: make(map[pairKey][]int),
		byEdge:    make(map[graph.EdgeID][]int),
		byNode:    make(map[graph.NodeID][]int),
		bySrc:     make(map[graph.NodeID][]SourcePath),
	}
}

// Add inserts p into the set (deduplicating identical paths) and returns
// whether the set grew. Trivial paths are rejected: an LSP needs at least
// one hop.
//
//rbpc:ctor
func (b *Explicit) Add(p graph.Path) bool {
	if p.IsTrivial() {
		return false
	}
	key := p.Key()
	if _, dup := b.byKey[key]; dup {
		return false
	}
	idx := len(b.paths)
	b.paths = append(b.paths, p.Clone())
	b.byKey[key] = idx
	pk := pairKey{p.Src(), p.Dst()}
	if _, have := b.byPair[pk]; !have {
		b.byPair[pk] = idx
	}
	b.byPairAll[pk] = append(b.byPairAll[pk], idx)
	for _, e := range p.Edges {
		b.byEdge[e] = append(b.byEdge[e], idx)
	}
	for _, n := range p.Nodes {
		b.byNode[n] = append(b.byNode[n], idx)
	}
	src := p.Src()
	b.bySrc[src] = append(b.bySrc[src], SourcePath{Path: b.paths[idx], Cost: b.paths[idx].CostIn(b.view), Index: idx})
	return true
}

// FromSource returns every stored path starting at s with its precomputed
// base-view cost, in insertion order. The returned slice is shared index
// state: callers must not modify it.
//
//rbpc:hotpath
func (b *Explicit) FromSource(s graph.NodeID) []SourcePath { return b.bySrc[s] }

// DeadUnder returns a Len()-sized mask marking every stored path broken by
// fv's removed edges and nodes: dead[i] == !Survives(paths[i], fv). It
// costs O(paths through the removed elements), not O(total paths), so
// consumers doing many survival checks against one failure view (the
// sparse decomposer) can trade a per-check edge scan for one bit load.
func (b *Explicit) DeadUnder(fv *graph.FailureView) []bool {
	return b.DeadUnderInto(fv, nil)
}

// DeadUnderInto is DeadUnder writing into caller-owned scratch: if dead
// has capacity for Len() entries it is cleared and reused, otherwise a
// fresh mask is allocated. Consumers that rebuild their mask once per
// failure view (the online engine's pooled sparse solvers, rebound every
// epoch) use it to avoid a Len()-sized allocation per epoch.
func (b *Explicit) DeadUnderInto(fv *graph.FailureView, dead []bool) []bool {
	if cap(dead) >= len(b.paths) {
		dead = dead[:len(b.paths)]
		clear(dead)
	} else {
		dead = make([]bool, len(b.paths))
	}
	for _, e := range fv.RemovedEdges() {
		for _, idx := range b.byEdge[e] {
			dead[idx] = true
		}
	}
	// A stored path visiting a removed node is dead: it is nontrivial, so
	// it traverses an edge incident to that node.
	for _, nd := range fv.RemovedNodes() {
		for _, idx := range b.byNode[nd] {
			dead[idx] = true
		}
	}
	return dead
}

// Len returns the number of stored paths.
func (b *Explicit) Len() int { return len(b.paths) }

// All returns the stored paths. Callers must not modify the slice.
func (b *Explicit) All() []graph.Path { return b.paths }

// Contains implements Base.
func (b *Explicit) Contains(p graph.Path) bool {
	if p.IsTrivial() {
		return false
	}
	_, ok := b.byKey[p.Key()]
	return ok
}

// Between implements Base.
func (b *Explicit) Between(s, d graph.NodeID) (graph.Path, bool) {
	idx, ok := b.byPair[pairKey{s, d}]
	if !ok {
		return graph.Path{}, false
	}
	return b.paths[idx], true
}

// View implements Base.
func (b *Explicit) View() graph.View { return b.view }

// AllBetween returns every stored path for the ordered pair (s, d), in
// insertion order. The sparse decomposer uses it to consider alternatives
// beyond the canonical path.
func (b *Explicit) AllBetween(s, d graph.NodeID) []graph.Path {
	idxs := b.byPairAll[pairKey{s, d}]
	out := make([]graph.Path, len(idxs))
	for i, idx := range idxs {
		out[i] = b.paths[idx]
	}
	return out
}

// IndicesThroughEdge returns the set positions (see SourcePath.Index) of
// the stored paths traversing e. Shared index state — callers must not
// modify the slice.
//
//rbpc:hotpath
func (b *Explicit) IndicesThroughEdge(e graph.EdgeID) []int { return b.byEdge[e] }

// SourceOf returns the source node of the stored path at position idx.
func (b *Explicit) SourceOf(idx int) graph.NodeID { return b.paths[idx].Src() }

// EdgeComplete reports whether the set contains the 1-hop path over every
// usable arc of its view (both orientations of every link, as the EdgeLSPs
// provisioning policy installs). When it holds, a decomposer scanning base
// candidates cheapest-first never needs a separate raw-edge scan: each
// usable arc's offer is preceded by a same-cost 1-hop base-path offer to
// the same node, so the arc's offer always loses the first-offer-wins
// tie-break and can be skipped without touching any label or tie-break.
func (b *Explicit) EdgeComplete() bool {
	n := b.view.Order()
	for u := 0; u < n; u++ {
		src := graph.NodeID(u)
		complete := true
		b.view.VisitArcs(src, func(a graph.Arc) bool {
			for _, idx := range b.byPairAll[pairKey{src, a.To}] {
				if e := b.paths[idx].Edges; len(e) == 1 && e[0] == a.Edge {
					return true
				}
			}
			complete = false
			return false
		})
		if !complete {
			return false
		}
	}
	return true
}

// ThroughEdge returns the base paths traversing edge e.
func (b *Explicit) ThroughEdge(e graph.EdgeID) []graph.Path {
	idxs := b.byEdge[e]
	out := make([]graph.Path, len(idxs))
	for i, idx := range idxs {
		out[i] = b.paths[idx]
	}
	return out
}

// ThroughInteriorNode returns the base paths that visit node n strictly
// between their endpoints — the paths a failure of router n breaks.
func (b *Explicit) ThroughInteriorNode(n graph.NodeID) []graph.Path {
	var out []graph.Path
	for _, idx := range b.byNode[n] {
		if p := b.paths[idx]; p.HasInteriorNode(n) {
			out = append(out, p)
		}
	}
	return out
}

// ILMEntries returns, for every node, the number of ILM entries required to
// provision all stored paths as LSPs: a path of h hops installs one entry
// at each of its h downstream routers (every router that receives the
// labeled packet: the interior nodes and the egress; the ingress writes
// labels from its FEC table, not its ILM).
func (b *Explicit) ILMEntries() map[graph.NodeID]int {
	entries := make(map[graph.NodeID]int)
	for _, p := range b.paths {
		for _, n := range p.Nodes[1:] {
			entries[n]++
		}
	}
	return entries
}

var _ Base = (*Explicit)(nil)

// FromSources materializes the canonical base paths from every source in
// sources to every reachable destination, using base's Between. Passing
// every node as a source yields the paper's "one LSP per ordered pair" base
// set.
func FromSources(b Base, sources []graph.NodeID) *Explicit {
	ex := NewExplicit(b.View())
	n := b.View().Order()
	for _, s := range sources {
		for d := 0; d < n; d++ {
			if graph.NodeID(d) == s {
				continue
			}
			if p, ok := b.Between(s, graph.NodeID(d)); ok {
				ex.Add(p)
			}
		}
	}
	return ex
}

// SubpathClosure returns a new explicit set containing every contiguous
// nontrivial subpath of every path in b. The paper requires base sets to
// contain "all subpaths of this shortest path"; for canonical sets that are
// not automatically subpath-closed this constructs the closure.
func SubpathClosure(b *Explicit) *Explicit {
	out := NewExplicit(b.view)
	for _, p := range b.paths {
		h := p.Hops()
		for i := 0; i < h; i++ {
			for j := i + 1; j <= h; j++ {
				out.Add(p.SubPath(i, j))
			}
		}
	}
	return out
}

// Corollary4Extend implements the paper's Corollary 4 base-set expansion:
// for each edge (u,v), append the edge to every base path that terminates
// at u or v, and also add the bare edge. The expanded set lets weighted
// restoration avoid the k extra edge components: after k failures the
// restoration path is a concatenation of at most k+1 paths from the
// expanded set.
//
// The expansion squares the storage, so it is intended for ISP-scale
// networks and tests (the paper sizes it at n(n-1) + 2m(n-1) for directed
// base paths).
func Corollary4Extend(b *Explicit, g *graph.Graph) *Explicit {
	out := NewExplicit(b.view)
	for _, p := range b.paths {
		out.Add(p)
	}
	for _, e := range g.Edges() {
		edgeUV := graph.Path{Nodes: []graph.NodeID{e.U, e.V}, Edges: []graph.EdgeID{e.ID}}
		edgeVU := graph.Path{Nodes: []graph.NodeID{e.V, e.U}, Edges: []graph.EdgeID{e.ID}}
		out.Add(edgeUV)
		out.Add(edgeVU)
		for _, p := range b.paths {
			// Append (u,v) to paths terminating at u; and (v,u) to paths
			// terminating at v. Skip if the path already uses the edge
			// (the result would backtrack and never helps restoration).
			if p.Dst() == e.U && !p.HasEdge(e.ID) && !p.HasNode(e.V) {
				out.Add(p.Concat(edgeUV))
			}
			if p.Dst() == e.V && !p.HasEdge(e.ID) && !p.HasNode(e.U) {
				out.Add(p.Concat(edgeVU))
			}
		}
	}
	return out
}

// EdgePath returns the single-edge path u -> v over edge id, oriented from
// u. It panics if u is not an endpoint.
func EdgePath(g graph.View, id graph.EdgeID, u graph.NodeID) graph.Path {
	e := g.Edge(id)
	return graph.Path{Nodes: []graph.NodeID{u, e.Other(u)}, Edges: []graph.EdgeID{id}}
}

// EnsureEdgePaths adds, for every edge that is not itself a shortest path
// between its endpoints, the single-edge path in both directions. The
// paper: "In the rare cases where an edge (u, v) is not a shortest path
// between u and v, the basic set of paths must also contain the single edge
// path". The oracle must answer for the same view as b.
func EnsureEdgePaths(b *Explicit, g *graph.Graph, o *spath.Oracle) int {
	added := 0
	for _, e := range g.Edges() {
		if e.W > o.Dist(e.U, e.V) {
			if b.Add(EdgePath(g, e.ID, e.U)) {
				added++
			}
			if b.Add(EdgePath(g, e.ID, e.V)) {
				added++
			}
		}
	}
	return added
}

// Stats summarizes an explicit base set.
type Stats struct {
	Paths     int
	Pairs     int
	MaxILM    int
	TotalILM  int
	AvgILM    float64
	MaxHops   int
	TotalHops int
}

// Summarize computes Stats for b.
func Summarize(b *Explicit) Stats {
	s := Stats{Paths: b.Len(), Pairs: len(b.byPair)}
	ilm := b.ILMEntries()
	for _, c := range ilm {
		s.TotalILM += c
		if c > s.MaxILM {
			s.MaxILM = c
		}
	}
	if len(ilm) > 0 {
		s.AvgILM = float64(s.TotalILM) / float64(len(ilm))
	}
	for _, p := range b.paths {
		s.TotalHops += p.Hops()
		if p.Hops() > s.MaxHops {
			s.MaxHops = p.Hops()
		}
	}
	return s
}

// String renders Stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("paths=%d pairs=%d ilm(max=%d avg=%.1f) hops(max=%d total=%d)",
		s.Paths, s.Pairs, s.MaxILM, s.AvgILM, s.MaxHops, s.TotalHops)
}

// SortedPairs returns the ordered pairs covered by the set, sorted, mainly
// for deterministic iteration in tests and reports.
func (b *Explicit) SortedPairs() [][2]graph.NodeID {
	out := make([][2]graph.NodeID, 0, len(b.byPair))
	for pk := range b.byPair {
		out = append(out, [2]graph.NodeID{pk.s, pk.d})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
