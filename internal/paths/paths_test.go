package paths

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rbpc/internal/graph"
	"rbpc/internal/spath"
)

// square returns the 4-cycle 0-1-2-3-0 with unit weights.
func square() *graph.Graph {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 0, 1)
	return g
}

func randomConnected(rng *rand.Rand, n, extra int, maxW int) *graph.Graph {
	g := graph.New(n)
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		g.AddEdge(graph.NodeID(perm[i]), graph.NodeID(perm[rng.Intn(i)]), float64(1+rng.Intn(maxW)))
	}
	for i := 0; i < extra; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if u != v {
			g.AddEdge(u, v, float64(1+rng.Intn(maxW)))
		}
	}
	return g
}

func TestAllShortestMembership(t *testing.T) {
	g := square()
	b := NewAllShortest(g)
	short := graph.Path{Nodes: []graph.NodeID{0, 1}, Edges: []graph.EdgeID{0}}
	if !b.Contains(short) {
		t.Error("single edge on square not recognized as shortest")
	}
	long := graph.Path{Nodes: []graph.NodeID{0, 3, 2, 1}, Edges: []graph.EdgeID{3, 2, 1}}
	if b.Contains(long) {
		t.Error("3-hop path around square recognized as shortest for adjacent pair")
	}
	p, ok := b.Between(0, 2)
	if !ok || p.Hops() != 2 {
		t.Errorf("Between(0,2) = %v, %v", p, ok)
	}
	if b.View() != graph.View(g) {
		t.Error("View() mismatch")
	}
}

func TestAllShortestBothDiagonalsContained(t *testing.T) {
	// On the square both 0-1-2 and 0-3-2 are shortest: AllShortest must
	// contain both even though Between returns just one.
	g := square()
	b := NewAllShortest(g)
	via1 := graph.Path{Nodes: []graph.NodeID{0, 1, 2}, Edges: []graph.EdgeID{0, 1}}
	via3 := graph.Path{Nodes: []graph.NodeID{0, 3, 2}, Edges: []graph.EdgeID{3, 2}}
	if !b.Contains(via1) || !b.Contains(via3) {
		t.Error("AllShortest missing one of the two diagonal paths")
	}
}

func TestUniqueShortestSelectsOne(t *testing.T) {
	g := square()
	b := NewUniqueShortest(g)
	via1 := graph.Path{Nodes: []graph.NodeID{0, 1, 2}, Edges: []graph.EdgeID{0, 1}}
	via3 := graph.Path{Nodes: []graph.NodeID{0, 3, 2}, Edges: []graph.EdgeID{3, 2}}
	c1, c3 := b.Contains(via1), b.Contains(via3)
	if c1 == c3 {
		t.Errorf("unique base set contains via1=%v via3=%v, want exactly one", c1, c3)
	}
	p, ok := b.Between(0, 2)
	if !ok || !b.Contains(p) {
		t.Error("Between result not contained in set")
	}
	if b.View() != graph.View(g) {
		t.Error("View() should be the unpadded graph")
	}
}

// TestQuickUniqueShortestSubpathClosed: the padded-unique base set is
// subpath-closed, the property Theorem 3 and the greedy decomposition rely
// on.
func TestQuickUniqueShortestSubpathClosed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 3+rng.Intn(15), rng.Intn(20), 3)
		b := NewUniqueShortest(g)
		n := g.Order()
		for trial := 0; trial < 20; trial++ {
			s, d := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			p, ok := b.Between(s, d)
			if !ok {
				return false
			}
			for i := 0; i <= p.Hops(); i++ {
				for j := i + 1; j <= p.Hops(); j++ {
					if !b.Contains(p.SubPath(i, j)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSurvives(t *testing.T) {
	g := square()
	p := graph.Path{Nodes: []graph.NodeID{0, 1, 2}, Edges: []graph.EdgeID{0, 1}}
	if !Survives(p, graph.FailEdges(g, 2)) {
		t.Error("path should survive unrelated failure")
	}
	if Survives(p, graph.FailEdges(g, 1)) {
		t.Error("path should not survive failure of its own edge")
	}
	if Survives(p, graph.FailNodes(g, 1)) {
		t.Error("path should not survive failure of interior node")
	}
	if Survives(p, graph.FailNodes(g, 0)) {
		t.Error("path should not survive failure of its source")
	}
	triv := graph.Trivial(2)
	if !Survives(triv, graph.FailNodes(g, 1)) || Survives(triv, graph.FailNodes(g, 2)) {
		t.Error("trivial path survival wrong")
	}
}

func TestExplicitAddAndIndexes(t *testing.T) {
	g := square()
	b := NewExplicit(g)
	p01 := graph.Path{Nodes: []graph.NodeID{0, 1}, Edges: []graph.EdgeID{0}}
	p012 := graph.Path{Nodes: []graph.NodeID{0, 1, 2}, Edges: []graph.EdgeID{0, 1}}
	if !b.Add(p01) || !b.Add(p012) {
		t.Fatal("Add returned false for new paths")
	}
	if b.Add(p01) {
		t.Error("duplicate Add returned true")
	}
	if b.Add(graph.Trivial(0)) {
		t.Error("trivial path accepted")
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	if !b.Contains(p012) || b.Contains(graph.Path{Nodes: []graph.NodeID{1, 2}, Edges: []graph.EdgeID{1}}) {
		t.Error("Contains wrong")
	}
	if got := b.ThroughEdge(0); len(got) != 2 {
		t.Errorf("ThroughEdge(0) = %d paths, want 2", len(got))
	}
	if got := b.ThroughEdge(2); len(got) != 0 {
		t.Errorf("ThroughEdge(2) = %d paths, want 0", len(got))
	}
	if got := b.ThroughInteriorNode(1); len(got) != 1 || !got[0].Equal(p012) {
		t.Errorf("ThroughInteriorNode(1) = %v", got)
	}
	if got := b.ThroughInteriorNode(0); len(got) != 0 {
		t.Errorf("ThroughInteriorNode(0) = %v, want none (endpoint)", got)
	}
}

func TestExplicitBetweenCanonical(t *testing.T) {
	g := square()
	b := NewExplicit(g)
	first := graph.Path{Nodes: []graph.NodeID{0, 1, 2}, Edges: []graph.EdgeID{0, 1}}
	second := graph.Path{Nodes: []graph.NodeID{0, 3, 2}, Edges: []graph.EdgeID{3, 2}}
	b.Add(first)
	b.Add(second)
	got, ok := b.Between(0, 2)
	if !ok || !got.Equal(first) {
		t.Errorf("Between returned %v, want first-added %v", got, first)
	}
	if _, ok := b.Between(2, 0); ok {
		t.Error("Between found path for uncovered ordered pair")
	}
}

func TestILMEntries(t *testing.T) {
	g := square()
	b := NewExplicit(g)
	// 0->2 via 1: entries at 1 and 2. 1->0: entry at 0.
	b.Add(graph.Path{Nodes: []graph.NodeID{0, 1, 2}, Edges: []graph.EdgeID{0, 1}})
	b.Add(graph.Path{Nodes: []graph.NodeID{1, 0}, Edges: []graph.EdgeID{0}})
	ilm := b.ILMEntries()
	want := map[graph.NodeID]int{0: 1, 1: 1, 2: 1}
	for n, w := range want {
		if ilm[n] != w {
			t.Errorf("ILM[%d] = %d, want %d", n, ilm[n], w)
		}
	}
	if len(ilm) != len(want) {
		t.Errorf("ILM has %d routers, want %d", len(ilm), len(want))
	}
}

func TestFromSourcesAllPairs(t *testing.T) {
	g := square()
	all := NewAllShortest(g)
	ex := FromSources(all, []graph.NodeID{0, 1, 2, 3})
	// 4 nodes -> 12 ordered pairs.
	if len(ex.SortedPairs()) != 12 {
		t.Errorf("covered pairs = %d, want 12", len(ex.SortedPairs()))
	}
	for _, pr := range ex.SortedPairs() {
		p, ok := ex.Between(pr[0], pr[1])
		if !ok {
			t.Fatalf("no path for %v", pr)
		}
		if err := p.Validate(g); err != nil {
			t.Fatalf("stored path invalid: %v", err)
		}
		if !all.Contains(p) {
			t.Errorf("stored path %v is not shortest", p)
		}
	}
}

func TestSubpathClosure(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	b := NewExplicit(g)
	b.Add(graph.Path{Nodes: []graph.NodeID{0, 1, 2, 3}, Edges: []graph.EdgeID{0, 1, 2}})
	closed := SubpathClosure(b)
	// Subpaths of a 3-hop path: lengths 1,2,3 -> 3+2+1 = 6.
	if closed.Len() != 6 {
		t.Errorf("closure size = %d, want 6", closed.Len())
	}
	if !closed.Contains(graph.Path{Nodes: []graph.NodeID{1, 2}, Edges: []graph.EdgeID{1}}) {
		t.Error("closure missing interior subpath")
	}
}

func TestCorollary4Extend(t *testing.T) {
	g := square()
	all := NewAllShortest(g)
	ex := FromSources(all, []graph.NodeID{0, 1, 2, 3})
	extended := Corollary4Extend(ex, g)
	if extended.Len() <= ex.Len() {
		t.Errorf("extension did not grow the set: %d <= %d", extended.Len(), ex.Len())
	}
	// The extension must include a 3-hop path: e.g. canonical 0->2 plus an
	// edge out of 2 to 3... every extended path must still be valid.
	for _, p := range extended.All() {
		if err := p.Validate(g); err != nil {
			t.Fatalf("extended path %v invalid: %v", p, err)
		}
	}
	// Bound from the paper (directed variant): n(n-1) + 2m(n-1).
	n, m := g.Order(), g.Size()
	bound := n*(n-1) + 2*m*(n-1)
	if extended.Len() > bound {
		t.Errorf("extended size %d exceeds bound %d", extended.Len(), bound)
	}
}

func TestEnsureEdgePaths(t *testing.T) {
	// Triangle with one heavy edge that is not a shortest path.
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	heavy := g.AddEdge(0, 2, 5)
	o := spath.NewOracle(g)
	b := FromSources(NewAllShortest(g), []graph.NodeID{0, 1, 2})
	if b.Contains(EdgePath(g, heavy, 0)) {
		t.Fatal("heavy edge already in canonical set")
	}
	added := EnsureEdgePaths(b, g, o)
	if added != 2 {
		t.Errorf("EnsureEdgePaths added %d, want 2 (both directions)", added)
	}
	if !b.Contains(EdgePath(g, heavy, 0)) || !b.Contains(EdgePath(g, heavy, 2)) {
		t.Error("heavy edge paths missing after EnsureEdgePaths")
	}
	if again := EnsureEdgePaths(b, g, o); again != 0 {
		t.Errorf("second EnsureEdgePaths added %d, want 0", again)
	}
}

func TestEdgePathOrientation(t *testing.T) {
	g := square()
	p := EdgePath(g, 0, 1) // edge 0 is (0,1); oriented from 1
	if p.Src() != 1 || p.Dst() != 0 {
		t.Errorf("EdgePath = %v, want 1 -> 0", p)
	}
}

func TestSummarizeExplicit(t *testing.T) {
	g := square()
	ex := FromSources(NewAllShortest(g), []graph.NodeID{0, 1, 2, 3})
	s := Summarize(ex)
	if s.Paths != ex.Len() || s.Pairs != 12 {
		t.Errorf("stats = %+v", s)
	}
	if s.MaxHops < 2 || s.MaxILM < 1 || s.AvgILM <= 0 {
		t.Errorf("stats degenerate: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

// TestQuickExplicitIndexesConsistent: for random base sets, the inverted
// indexes agree with a linear scan.
func TestQuickExplicitIndexesConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 4+rng.Intn(12), rng.Intn(15), 3)
		all := NewAllShortest(g)
		var sources []graph.NodeID
		for i := 0; i < g.Order(); i++ {
			sources = append(sources, graph.NodeID(i))
		}
		ex := FromSources(all, sources)
		if g.Size() == 0 {
			return true
		}
		e := graph.EdgeID(rng.Intn(g.Size()))
		fromIndex := len(ex.ThroughEdge(e))
		scan := 0
		for _, p := range ex.All() {
			if p.HasEdge(e) {
				scan++
			}
		}
		if fromIndex != scan {
			return false
		}
		node := graph.NodeID(rng.Intn(g.Order()))
		fromNodeIdx := len(ex.ThroughInteriorNode(node))
		scan = 0
		for _, p := range ex.All() {
			if p.HasInteriorNode(node) {
				scan++
			}
		}
		return fromNodeIdx == scan
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
