package chaos

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"rbpc/internal/engine"
	"rbpc/internal/shard"
)

func shardedCfg() Config {
	cfg := smokeCfg()
	cfg.Shards = 3
	return cfg
}

// TestShardedLockstepEquivalence: the production multi-shard coordinator
// survives the chaos schedules with every oracle green — per-shard flush
// agreement, per-shard epoch monotonicity, and bit-identical merged
// views against the single-writer FullRebuild reference.
func TestShardedLockstepEquivalence(t *testing.T) {
	c, v, err := Hunt(shardedCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("sharded coordinator violated an oracle:\n%v\nschedule:\n%s", v, c.Schedule)
	}
}

// TestHarnessCatchesEveryShardFault: the sharded harness's own
// conformance proof — every injectable coordinator defect is caught,
// the shrunk counterexample replays deterministically, and the corpus
// encoding round-trips to an equally-failing sharded case.
func TestHarnessCatchesEveryShardFault(t *testing.T) {
	for _, f := range shard.Faults() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			cfg := shardedCfg()
			cfg.ShardFault = f
			c, v, err := Hunt(cfg, 4)
			if err != nil {
				t.Fatal(err)
			}
			if v == nil {
				t.Fatalf("harness did not catch injected shard fault %v within budget", f)
			}
			t.Logf("caught %v as %s (shrunk to %d steps)", f, v.Kind, len(c.Schedule))

			for i := 0; i < 2; i++ {
				_, err := c.Run()
				var rv *Violation
				if !errors.As(err, &rv) {
					t.Fatalf("replay %d of shrunk case did not fail: %v", i, err)
				}
				if rv.Kind != v.Kind || rv.Step != v.Step {
					t.Fatalf("replay %d diverged: got %v, want %v", i, rv, v)
				}
			}

			var buf bytes.Buffer
			if err := WriteCase(&buf, c); err != nil {
				t.Fatal(err)
			}
			rc, err := ReadCase(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadCase: %v\ncorpus:\n%s", err, buf.String())
			}
			if !reflect.DeepEqual(rc, c) {
				t.Fatalf("corpus round-trip changed the case:\ngot  %+v\nwant %+v", rc, c)
			}
			_, err = rc.Run()
			var rv *Violation
			if !errors.As(err, &rv) || rv.Kind != v.Kind {
				t.Fatalf("decoded case does not reproduce: %v", err)
			}
		})
	}
}

// TestShardedEngineFaultsStillCaught: an engine-level defect inside a
// shard is still caught through the sharded oracles (the skew proof must
// not be the only working detector).
func TestShardedEngineFaultsStillCaught(t *testing.T) {
	cfg := shardedCfg()
	cfg.Fault = engine.FaultDropEpoch
	_, v, err := Hunt(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("drop-epoch inside a shard not caught by the sharded harness")
	}
}

// TestShardedTraceDeterministic: sharded runs replay byte-identically
// too.
func TestShardedTraceDeterministic(t *testing.T) {
	c, err := Generate(shardedCfg())
	if err != nil {
		t.Fatal(err)
	}
	r1, err1 := c.Run()
	r2, err2 := c.Run()
	if err1 != nil || err2 != nil {
		t.Fatalf("clean sharded case failed: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(r1.Trace, r2.Trace) {
		t.Fatal("two sharded runs produced different event traces")
	}
}
