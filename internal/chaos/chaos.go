// Package chaos is the deterministic fault-injection conformance harness
// for the online restoration engine. It composes the discrete-event
// engine (internal/sim) with the serving engine (internal/engine),
// driving seeded schedules of failure bursts, repairs racing failures,
// queries landing mid-rebuild, and coalescing-window edge cases — and
// checks every served answer against independent runtime oracles:
//
//   - optimality: an independent brute-force Dijkstra on the failed graph
//     confirms the served cost is the true post-failure shortest distance;
//   - interleaving bound: the served concatenation has at most 2k+1
//     components, and the served path admits a decomposition into at most
//     k+1 original shortest paths with at most k bare edges (the machine
//     check of Theorems 2/3);
//   - membership: every multi-hop component is a member of the
//     provisioned base set (the Corollary-4 discipline — restoration
//     never invents paths, it concatenates pre-provisioned ones);
//   - monotonicity: the serial query stream never observes an epoch older
//     than one it has already seen, and after a flush the snapshot's
//     failed-set equals the reference model of the event stream;
//   - equivalence: a lockstep reference engine running in FullRebuild mode
//     (every plan computed from scratch, no cache, no incremental reuse)
//     receives the same event stream, and at every flush barrier the two
//     serving matrices must be bit-identical — same per-pair routability,
//     cost bits, and LSP path sequences, same sampled post-failure
//     distances. This is the machine check of the incremental epoch
//     builder's contract: reuse is legal only when a from-scratch build
//     would reproduce the snapshot exactly.
//
// Sharded cases (Config.Shards > 0) run the multi-shard coordinator
// (internal/shard) as the system under test: the same schedule fans out
// to every shard, queries route by ring ownership with per-shard epoch
// monotonicity, and flush barriers check every shard's failed-set
// against the event model (catching an event-skewed shard) before
// comparing the merged cross-shard view bit-for-bit against the same
// single-writer FullRebuild reference.
//
// Process-mode cases (Config.Procs, sharded only) put the cross-process
// transport (internal/shardrpc) under the same oracles: the worker fleet
// runs in-process behind net.Pipe connections carrying the real length-
// prefixed wire protocol, so every query crosses a full encode/decode
// round trip, every churn event rides a burst frame, and every flush
// barrier checks the coordinator's decoded replica snapshots — per-worker
// failed-set agreement against the event model (catching a dropped or
// torn burst), then the merged replica view bit-for-bit against the
// FullRebuild reference. FaultTornFrame corrupts one burst frame on the
// wire after its checksum is computed; the receiving worker must drop it
// and the flush oracle must catch the divergence.
//
// Failing schedules are shrunk to a minimal event sequence by delta
// debugging (Shrink) and emitted as a replayable corpus file that
// cmd/rbpc-chaos re-runs deterministically.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rbpc/internal/engine"
	"rbpc/internal/failure"
	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/paths"
	"rbpc/internal/rbpc"
	"rbpc/internal/shard"
	"rbpc/internal/shardrpc"
	"rbpc/internal/sim"
	"rbpc/internal/topology"
)

// Config parameterizes schedule generation and the engine under test.
// The zero value of any field selects the default.
type Config struct {
	// Nodes is the Waxman topology size (default 18).
	Nodes int
	// TopoSeed seeds the topology generator (default 1).
	TopoSeed int64
	// Seed seeds the schedule generator (default 1).
	Seed int64
	// Steps is the number of churn events per schedule (default 60).
	Steps int
	// MaxDown bounds concurrently-down links (default 3).
	MaxDown int
	// CoalesceWindow is passed to the engine; non-zero values exercise
	// burst coalescing (events cancelling out inside one window).
	CoalesceWindow time.Duration
	// Fault injects a deliberate engine defect (engine.FaultNone = the
	// production engine). The harness must catch every injectable fault.
	Fault engine.Fault
	// Scheme selects the restoration scheme of the engine under test
	// (default engine.SchemeSource). The lockstep reference always runs
	// the source scheme in FullRebuild mode; the oracles dispatch on the
	// flavor of each served answer — source answers are held to the full
	// optimality/theorem chain and bit-matched against the reference,
	// local answers to an exact independent recomputation of their
	// Section-4 construction. Sharded cases support SchemeSource only.
	Scheme engine.Scheme
	// FloodFrozen, for SchemeHybrid cases, freezes the modeled link-state
	// flood (an effectively infinite per-hop delay): no source ever
	// passes its horizon, so affected pairs keep serving their edge-bypass
	// answers and the flush oracles exercise the bypass flavor. Without
	// it hybrid cases run a zero-delay flood — flushed snapshots are
	// converged and must be bit-identical to the source reference.
	FloodFrozen bool
	// Shards, when positive, runs the multi-shard coordinator
	// (internal/shard) as the system under test instead of a single
	// engine: the same event stream fans out to every shard, queries
	// route by ring ownership, and flush barriers compare the merged
	// cross-shard view bit-for-bit against the single-writer FullRebuild
	// reference. Zero tests the single engine.
	Shards int
	// ShardFault injects a deliberate coordinator defect (sharded runs
	// only). The harness must catch every injectable shard fault too.
	ShardFault shard.Fault
	// Procs, for sharded cases, serves the shards through the
	// cross-process transport (internal/shardrpc) instead of the
	// in-process coordinator: the same worker fleet runs behind net.Pipe
	// connections carrying the real wire protocol, so the oracles check
	// the full frame encode/decode, burst/ack, and replica-merge
	// machinery. Requires Shards > 0.
	Procs bool
	// ProcFault injects a deliberate transport defect (process-mode runs
	// only). The harness must catch every injectable transport fault too.
	ProcFault shardrpc.Fault
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 18
	}
	if c.TopoSeed == 0 {
		c.TopoSeed = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Steps == 0 {
		c.Steps = 60
	}
	if c.MaxDown == 0 {
		c.MaxDown = 3
	}
	return c
}

// Case is a fully-specified, reproducible chaos run: the topology
// parameters, the engine configuration under test, and the explicit
// schedule. Same Case -> same run, which is what makes shrinking and
// corpus replay possible.
type Case struct {
	Nodes          int
	TopoSeed       int64
	Seed           int64 // schedule seed the case was generated from (informational)
	MaxDown        int   // informational
	CoalesceWindow time.Duration
	Fault          engine.Fault
	Scheme         engine.Scheme
	FloodFrozen    bool
	Shards         int // 0 = single engine under test
	ShardFault     shard.Fault
	Procs          bool // serve the shards over the shardrpc transport
	ProcFault      shardrpc.Fault
	Schedule       failure.Schedule
}

// Generate builds the Case for cfg: the seeded topology plus the seeded
// chaos schedule over it. Same cfg -> identical case, always; replay and
// shrinking depend on it.
//
//rbpc:deterministic
func Generate(cfg Config) (Case, error) {
	cfg = cfg.withDefaults()
	w, err := universe(cfg.Nodes, cfg.TopoSeed)
	if err != nil {
		return Case{}, err
	}
	return Case{
		Nodes:          cfg.Nodes,
		TopoSeed:       cfg.TopoSeed,
		Seed:           cfg.Seed,
		MaxDown:        cfg.MaxDown,
		CoalesceWindow: cfg.CoalesceWindow,
		Fault:          cfg.Fault,
		Scheme:         cfg.Scheme,
		FloodFrozen:    cfg.FloodFrozen,
		Shards:         cfg.Shards,
		ShardFault:     cfg.ShardFault,
		Procs:          cfg.Procs,
		ProcFault:      cfg.ProcFault,
		Schedule:       failure.ChaosSchedule(w.g, cfg.Steps, cfg.MaxDown, rand.New(rand.NewSource(cfg.Seed))),
	}, nil
}

// Violation is one oracle failure. It implements error; Case.Run returns
// the first violation encountered.
type Violation struct {
	// Step is the schedule index whose execution tripped the oracle.
	Step int
	// Epoch is the epoch the violating observation was served from.
	Epoch uint64
	// Kind names the oracle: optimality, theorem-bound,
	// interleaving-bound, membership, monotonicity, flush-agreement,
	// chain, dead-edge, forwarding, unroutable-but-connected,
	// equivalence, torn-view, local-exact, settle, transport.
	Kind string
	// Detail is the human-readable specifics.
	Detail string
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("chaos: step %d (epoch %d): %s: %s", v.Step, v.Epoch, v.Kind, v.Detail)
}

// TraceEntry is one fired discrete event of a run (see sim.TraceFunc).
type TraceEntry struct {
	At  sim.Time
	Seq int64
}

// Report summarizes one run.
type Report struct {
	Steps   int   // schedule length
	Churn   int   // fail/repair steps executed
	Queries int   // query steps executed
	Probes  int   // end-to-end data-plane probes sent
	Epochs  int64 // epochs published by the engine (via the OnEpoch tap)
	// Trace is the discrete-event trace of the run; two runs of the same
	// Case must produce identical traces.
	Trace []TraceEntry
}

// world is the shared immutable context for one (nodes, topoSeed):
// the topology, a pristine provisioned system to export engines from,
// and the all-shortest-paths base set the theorem oracle checks against.
// Provisioning dominates run cost, so worlds are cached — the engine
// clones everything it mutates (COW network, per-export map clones), so
// sharing is safe.
type world struct {
	g   *graph.Graph
	sys *rbpc.System
	all *paths.AllShortest
	// prim is the pristine primary LSP per provisioned pair — the input
	// of the local schemes' Section-4 constructions, which the oracle
	// recomputes independently for every local-flavor answer.
	prim map[rbpc.Pair]*mpls.LSP
}

var (
	worldMu sync.Mutex
	worlds  = make(map[[2]int64]*world)
)

func universe(nodes int, topoSeed int64) (*world, error) {
	worldMu.Lock()
	defer worldMu.Unlock()
	key := [2]int64{int64(nodes), topoSeed}
	if w, ok := worlds[key]; ok {
		return w, nil
	}
	g := topology.Waxman(nodes, 0.8, 0.5, topoSeed)
	sys, err := rbpc.NewSystem(g, rbpc.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("chaos: provisioning %d-node topology (seed %d): %w", nodes, topoSeed, err)
	}
	w := &world{g: g, sys: sys, all: paths.NewAllShortest(g), prim: sys.Export().Primaries}
	worlds[key] = w
	return w, nil
}

// Run executes the case and checks every observation against the
// oracles. The returned error is a *Violation on oracle failure, or a
// plain error if the world could not be built.
func (c Case) Run() (Report, error) {
	w, err := universe(c.Nodes, c.TopoSeed)
	if err != nil {
		return Report{}, err
	}
	if c.Shards > 0 && c.Scheme != engine.SchemeSource {
		return Report{}, fmt.Errorf("chaos: sharded cases test the source scheme only (got %v)", c.Scheme)
	}
	if c.Procs && c.Shards <= 0 {
		return Report{}, fmt.Errorf("chaos: process-mode cases require Shards > 0")
	}
	if c.ProcFault != shardrpc.FaultNone && !c.Procs {
		return Report{}, fmt.Errorf("chaos: proc-fault %v set on a non-process case", c.ProcFault)
	}
	var epochs atomic.Int64
	ecfg := engine.Config{
		Scheme:         c.Scheme,
		CoalesceWindow: c.CoalesceWindow,
		Fault:          c.Fault,
		OnEpoch:        func(*engine.Snapshot) { epochs.Add(1) },
	}
	if c.Scheme == engine.SchemeHybrid && c.FloodFrozen {
		// Freeze the flood: no router's horizon ever passes, so every
		// flushed snapshot keeps serving its edge-bypass answers.
		ecfg.Flood = engine.FloodConfig{Detect: time.Hour, PerHop: time.Hour}
	}
	// The system under test: a single engine, the in-process multi-shard
	// coordinator, or — when the case is process-mode — the shardrpc
	// coordinator driving the worker fleet over pipe-backed wire
	// connections.
	var eng *engine.Engine
	var coord *shard.Coordinator
	var proc *shardrpc.Coordinator
	if c.Procs {
		prov := w.sys.Export()
		wcfg := shardrpc.Config{
			Shards: c.Shards,
			Engine: ecfg,
			Fault:  c.ProcFault,
			// The schedule is the only clock: no background pings, and
			// timeouts far beyond any run so a deliberately-dropped burst
			// (FaultTornFrame) is caught by the flush oracle, not by an
			// ack-timeout death racing it.
			HealthEvery: -1,
			AckTimeout:  time.Minute,
			DialTimeout: time.Second,
			DialBudget:  10 * time.Second,
		}
		workers := make([]*shardrpc.Worker, c.Shards)
		for s := range workers {
			workers[s], err = shardrpc.NewWorker(prov, s, wcfg)
			if err != nil {
				for _, wk := range workers[:s] {
					wk.Close()
				}
				return Report{}, err
			}
		}
		defer func() {
			for _, wk := range workers {
				wk.Close()
			}
		}()
		wcfg.Dial = func(i int) (net.Conn, error) {
			cc, wc := net.Pipe()
			go workers[i].ServeConn(wc)
			return cc, nil
		}
		proc, err = shardrpc.NewCoordinator(prov, wcfg)
		if err != nil {
			return Report{}, err
		}
		defer proc.Close()
	} else if c.Shards > 0 {
		coord, err = shard.New(w.sys.Export(), shard.Config{
			Shards: c.Shards,
			Fault:  c.ShardFault,
			Engine: ecfg,
		})
		if err != nil {
			return Report{}, err
		}
		defer coord.Close()
	} else {
		eng, err = engine.New(w.sys.Export(), ecfg)
		if err != nil {
			return Report{}, err
		}
		defer eng.Close()
	}

	// The equivalence oracle's reference: a correct engine fed the same
	// event stream, rebuilding every plan from scratch. Flush barriers
	// compare its serving matrix bit-for-bit against the engine under
	// test — incremental reuse (or an injected defect) may never produce
	// a snapshot a from-scratch build would not.
	ref, err := engine.New(w.sys.Export(), engine.Config{
		CoalesceWindow: c.CoalesceWindow,
		FullRebuild:    true,
	})
	if err != nil {
		return Report{}, err
	}
	defer ref.Close()

	ck := newChecker(w, c.Scheme)
	rep := Report{Steps: len(c.Schedule)}
	model := make(map[graph.EdgeID]bool) // reference failed-set of the event stream

	var se sim.Engine
	se.SetTrace(func(at sim.Time, seq int64) {
		rep.Trace = append(rep.Trace, TraceEntry{At: at, Seq: seq})
	})

	var vio *Violation
	for i, st := range c.Schedule {
		i, st := i, st
		se.At(sim.Time(i), func() {
			if vio != nil {
				return
			}
			switch st.Kind {
			case failure.StepFail:
				switch {
				case proc != nil:
					proc.Fail(st.Edge)
				case coord != nil:
					coord.Fail(st.Edge)
				default:
					eng.Fail(st.Edge)
				}
				ref.Fail(st.Edge)
				model[st.Edge] = true
				rep.Churn++
			case failure.StepRepair:
				switch {
				case proc != nil:
					proc.Repair(st.Edge)
				case coord != nil:
					coord.Repair(st.Edge)
				default:
					eng.Repair(st.Edge)
				}
				ref.Repair(st.Edge)
				delete(model, st.Edge)
				rep.Churn++
			case failure.StepQuery:
				rep.Queries++
				switch {
				case proc != nil:
					// Process mode checks the raw wire answer — the full
					// epoch/failed-set/route as it crossed the transport —
					// rather than the Result wrapper's snapshot view.
					ans, qerr := proc.RemoteQuery(st.Src, st.Dst)
					vio = ck.checkRemoteAnswer(i, proc.Owner(st.Src), st.Src, st.Dst, ans, qerr)
				case coord != nil:
					vio = ck.checkResult(i, coord.Owner(st.Src), coord.Query(st.Src, st.Dst))
				default:
					vio = ck.checkResult(i, 0, eng.Query(st.Src, st.Dst))
				}
				rep.Probes = ck.probes
			case failure.StepFlush:
				switch {
				case proc != nil:
					proc.Flush()
					ref.Flush()
					// Per-worker flush agreement on the decoded replicas:
					// a burst dropped on the wire (torn frame) leaves its
					// worker's failed-set behind the event model.
					for s := 0; s < proc.Shards() && vio == nil; s++ {
						snap := proc.Replica(s)
						if snap == nil {
							vio = &Violation{Step: i, Kind: "torn-view",
								Detail: fmt.Sprintf("worker %d has no replica after flush", s)}
						} else {
							vio = ck.checkFlush(i, s, snap, model)
						}
					}
					if vio == nil {
						v, ok := proc.View()
						if !ok {
							vio = &Violation{Step: i, Kind: "torn-view",
								Detail: "no consistent cross-process view after flush"}
						} else {
							vio = ck.checkShardEquivalence(i, v, ref.Snapshot())
						}
					}
				case coord != nil:
					coord.Flush()
					ref.Flush()
					// Per-shard flush agreement: every shard's snapshot must
					// hold the full failed-set — this is the oracle that
					// catches an event-skewed shard.
					for s := 0; s < coord.Shards() && vio == nil; s++ {
						vio = ck.checkFlush(i, s, coord.Shard(s).Snapshot(), model)
					}
					if vio == nil {
						v, ok := coord.View()
						if !ok {
							vio = &Violation{Step: i, Kind: "torn-view",
								Detail: "no consistent cross-shard view after flush"}
						} else {
							vio = ck.checkShardEquivalence(i, v, ref.Snapshot())
						}
					}
				default:
					eng.Flush()
					ref.Flush()
					vio = ck.checkFlush(i, 0, eng.Snapshot(), model)
					if vio == nil {
						vio = ck.checkEquivalence(i, eng.Snapshot(), ref.Snapshot())
					}
				}
			case failure.StepSettle:
				// Settle: flush, then wait (real time) for the published
				// snapshot to become time-invariant. Only a live hybrid
				// flood takes nonzero time; a frozen flood never settles,
				// so settle steps degrade to flush barriers there.
				switch {
				case proc != nil:
					proc.Flush()
				case coord != nil:
					coord.Flush()
				default:
					eng.Flush()
				}
				ref.Flush()
				if eng != nil && !c.FloodFrozen {
					deadline := time.Now().Add(5 * time.Second)
					for !eng.Snapshot().Converged() {
						if time.Now().After(deadline) {
							vio = &Violation{Step: i, Epoch: eng.Snapshot().Epoch(), Kind: "settle",
								Detail: "snapshot did not converge within 5s"}
							break
						}
						time.Sleep(100 * time.Microsecond)
					}
				}
			}
		})
	}
	se.Run()
	rep.Epochs = epochs.Load()
	if vio != nil {
		return rep, vio
	}
	return rep, nil
}

// Hunt runs the harness over runs consecutive schedule seeds starting at
// cfg.Seed, alternating the coalesce window off and on so both writer
// timings are covered. On the first oracle violation the failing schedule
// is shrunk to a minimal reproduction; the shrunk case and its violation
// are returned. A nil violation means every run was clean.
func Hunt(cfg Config, runs int) (Case, *Violation, error) {
	cfg = cfg.withDefaults()
	for r := 0; r < runs; r++ {
		run := cfg
		run.Seed = cfg.Seed + int64(r)
		if r%2 == 1 && run.CoalesceWindow == 0 {
			run.CoalesceWindow = 200 * time.Microsecond
		}
		c, err := Generate(run)
		if err != nil {
			return Case{}, nil, err
		}
		_, err = c.Run()
		if err == nil {
			continue
		}
		var v *Violation
		if !errors.As(err, &v) {
			return Case{}, nil, err
		}
		if sc, sv := Shrink(c); sv != nil {
			return sc, sv, nil
		}
		// The violation did not reproduce on an immediate re-run (a true
		// scheduling race): return the unshrunk case with the original
		// violation so the caller still has the evidence.
		return c, v, nil
	}
	return Case{}, nil, nil
}
