package chaos

import (
	"errors"

	"rbpc/internal/failure"
)

// Shrink minimizes a failing case's schedule by delta debugging (ddmin):
// it repeatedly tries removing contiguous chunks of steps, keeping any
// candidate that still trips an oracle, halving the chunk size until
// single steps no longer come out. Subsets are always valid schedules
// because the engine absorbs redundant events (failing a down link or
// repairing an up link is a no-op), matching the reference model's map
// semantics.
//
// Shrink returns the smallest failing case found and its violation. A
// nil violation means the input case did not fail on re-run (the
// original failure was a non-deterministic scheduling race); the input
// case is returned unchanged.
//
//rbpc:deterministic
func Shrink(c Case) (Case, *Violation) {
	fails := func(sched failure.Schedule) *Violation {
		cand := c
		cand.Schedule = sched
		_, err := cand.Run()
		if err == nil {
			return nil
		}
		var v *Violation
		if errors.As(err, &v) {
			return v
		}
		return nil
	}

	best := c.Schedule
	lastV := fails(best)
	if lastV == nil {
		return c, nil
	}

	for chunk := (len(best) + 1) / 2; chunk >= 1; {
		removed := false
		for lo := 0; lo < len(best); lo += chunk {
			hi := lo + chunk
			if hi > len(best) {
				hi = len(best)
			}
			cand := make(failure.Schedule, 0, len(best)-(hi-lo))
			cand = append(cand, best[:lo]...)
			cand = append(cand, best[hi:]...)
			if v := fails(cand); v != nil {
				best, lastV = cand, v
				removed = true
				lo -= chunk // the window shifted left; retry this offset
			}
		}
		if !removed {
			if chunk == 1 {
				break
			}
			chunk = (chunk + 1) / 2
			if chunk < 1 {
				chunk = 1
			}
		}
	}

	c.Schedule = best
	return c, lastV
}
