package chaos

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"rbpc/internal/engine"
	"rbpc/internal/failure"
	"rbpc/internal/shard"
	"rbpc/internal/shardrpc"
)

// Corpus format: a short header of "key value" lines fixing the world and
// engine configuration, a "schedule" marker, then the schedule in
// failure.Schedule's line format. Blank lines and '#' comments are
// ignored throughout. The file is self-contained: cmd/rbpc-chaos -replay
// re-runs it byte-for-byte deterministically.

// WriteCase writes c in the corpus format, byte-stably: re-saving an
// unchanged case must produce an identical file.
//
//rbpc:deterministic
func WriteCase(w io.Writer, c Case) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# rbpc-chaos case")
	fmt.Fprintf(bw, "nodes %d\n", c.Nodes)
	fmt.Fprintf(bw, "topo-seed %d\n", c.TopoSeed)
	fmt.Fprintf(bw, "sched-seed %d\n", c.Seed)
	fmt.Fprintf(bw, "max-down %d\n", c.MaxDown)
	fmt.Fprintf(bw, "coalesce-us %d\n", c.CoalesceWindow.Microseconds())
	fmt.Fprintf(bw, "fault %s\n", c.Fault)
	// Scheme keys are omitted for source-scheme cases so their files stay
	// byte-identical to the pre-scheme corpus format.
	if c.Scheme != engine.SchemeSource {
		fmt.Fprintf(bw, "scheme %s\n", c.Scheme)
	}
	if c.FloodFrozen {
		fmt.Fprintln(bw, "flood-frozen 1")
	}
	// Sharded-run keys are omitted for single-engine cases so their files
	// stay byte-identical to the pre-shard corpus format.
	if c.Shards > 0 {
		fmt.Fprintf(bw, "shards %d\n", c.Shards)
		fmt.Fprintf(bw, "shard-fault %s\n", c.ShardFault)
		// Process-mode keys are omitted for in-process sharded cases so
		// their files stay byte-identical to the pre-transport format.
		if c.Procs {
			fmt.Fprintln(bw, "procs 1")
			fmt.Fprintf(bw, "proc-fault %s\n", c.ProcFault)
		}
	}
	fmt.Fprintln(bw, "schedule")
	if err := bw.Flush(); err != nil {
		return err
	}
	return c.Schedule.Encode(w)
}

// ReadCase parses the corpus format.
//
//rbpc:deterministic
func ReadCase(r io.Reader) (Case, error) {
	sc := bufio.NewScanner(r)
	var c Case
	lineNo := 0
	inSchedule := false
	var sched strings.Builder
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if inSchedule {
			sched.WriteString(line)
			sched.WriteByte('\n')
			continue
		}
		fields := strings.Fields(line)
		key := fields[0]
		if key == "schedule" {
			inSchedule = true
			continue
		}
		if len(fields) != 2 {
			return Case{}, fmt.Errorf("chaos: corpus line %d: %q takes one value", lineNo, key)
		}
		if key == "fault" {
			f, err := engine.ParseFault(fields[1])
			if err != nil {
				return Case{}, fmt.Errorf("chaos: corpus line %d: %v", lineNo, err)
			}
			c.Fault = f
			continue
		}
		if key == "scheme" {
			s, err := engine.ParseScheme(fields[1])
			if err != nil {
				return Case{}, fmt.Errorf("chaos: corpus line %d: %v", lineNo, err)
			}
			c.Scheme = s
			continue
		}
		if key == "shard-fault" {
			f, err := shard.ParseFault(fields[1])
			if err != nil {
				return Case{}, fmt.Errorf("chaos: corpus line %d: %v", lineNo, err)
			}
			c.ShardFault = f
			continue
		}
		if key == "proc-fault" {
			f, err := shardrpc.ParseFault(fields[1])
			if err != nil {
				return Case{}, fmt.Errorf("chaos: corpus line %d: %v", lineNo, err)
			}
			c.ProcFault = f
			continue
		}
		n, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return Case{}, fmt.Errorf("chaos: corpus line %d: %s: %v", lineNo, key, err)
		}
		switch key {
		case "nodes":
			c.Nodes = int(n)
		case "topo-seed":
			c.TopoSeed = n
		case "sched-seed":
			c.Seed = n
		case "max-down":
			c.MaxDown = int(n)
		case "coalesce-us":
			c.CoalesceWindow = time.Duration(n) * time.Microsecond
		case "flood-frozen":
			c.FloodFrozen = n != 0
		case "shards":
			c.Shards = int(n)
		case "procs":
			c.Procs = n != 0
		default:
			return Case{}, fmt.Errorf("chaos: corpus line %d: unknown key %q", lineNo, key)
		}
	}
	if err := sc.Err(); err != nil {
		return Case{}, fmt.Errorf("chaos: %w", err)
	}
	if !inSchedule {
		return Case{}, fmt.Errorf("chaos: corpus has no schedule section")
	}
	if c.Nodes <= 0 {
		return Case{}, fmt.Errorf("chaos: corpus missing nodes")
	}
	s, err := failure.DecodeSchedule(strings.NewReader(sched.String()))
	if err != nil {
		return Case{}, err
	}
	c.Schedule = s
	return c, nil
}

// SaveCase writes c to path, creating parent directories as needed.
func SaveCase(path string, c Case) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCase(f, c); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCase reads the case at path.
func LoadCase(path string) (Case, error) {
	f, err := os.Open(path)
	if err != nil {
		return Case{}, err
	}
	defer f.Close()
	return ReadCase(f)
}
