//go:build chaos

package chaos

import (
	"errors"
	"testing"
	"time"

	"rbpc/internal/engine"
)

// The long conformance run, enabled by `go test -tags chaos` and wired
// into the verify gate under -race. It widens every budget the smoke
// variant bounds: bigger topology, more schedule seeds, longer schedules,
// deeper concurrent-failure bursts, and the coalescing window exercised
// on half the runs (Hunt alternates it).

func longCfg() Config {
	return Config{Nodes: 24, TopoSeed: 7, Steps: 150, MaxDown: 4}
}

// TestLongConformanceClean: the production engine over 20 seeds of long
// schedules, every oracle green.
func TestLongConformanceClean(t *testing.T) {
	if testing.Short() {
		t.Skip("long chaos run")
	}
	c, v, err := Hunt(longCfg(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("production engine violated an oracle:\n%v\nschedule:\n%s", v, c.Schedule)
	}
}

// TestLongConformanceCoalesced: a dedicated pass with a wide coalescing
// window on every run, so bursts collapse inside one rebuild and events
// cancel out before publication.
func TestLongConformanceCoalesced(t *testing.T) {
	if testing.Short() {
		t.Skip("long chaos run")
	}
	cfg := longCfg()
	cfg.CoalesceWindow = 2 * time.Millisecond
	c, v, err := Hunt(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("coalescing engine violated an oracle:\n%v\nschedule:\n%s", v, c.Schedule)
	}
}

// TestLongSchemeConformance: every restoration scheme over long schedules
// — local flavors held to the exact Section-4 recomputation, hybrid both
// converged and flood-frozen.
func TestLongSchemeConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("long chaos run")
	}
	for _, tc := range []struct {
		name   string
		scheme engine.Scheme
		frozen bool
	}{
		{"local", engine.SchemeLocal, false},
		{"bypass", engine.SchemeBypass, false},
		{"hybrid-converged", engine.SchemeHybrid, false},
		{"hybrid-frozen", engine.SchemeHybrid, true},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := longCfg()
			cfg.Scheme = tc.scheme
			cfg.FloodFrozen = tc.frozen
			c, v, err := Hunt(cfg, 8)
			if err != nil {
				t.Fatal(err)
			}
			if v != nil {
				t.Fatalf("%s engine violated an oracle:\n%v\nschedule:\n%s", tc.name, v, c.Schedule)
			}
		})
	}
}

// TestLongHarnessCatchesEveryFault: fault detection at the long budget,
// with shrunk counterexamples replaying deterministically.
func TestLongHarnessCatchesEveryFault(t *testing.T) {
	if testing.Short() {
		t.Skip("long chaos run")
	}
	for _, f := range engine.Faults() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			cfg := longCfg()
			cfg.Fault = f
			if f == engine.FaultStaleBypass {
				// The stale-bypass defect lives in the local-plan writer,
				// which only runs under a local scheme.
				cfg.Scheme = engine.SchemeBypass
			}
			c, v, err := Hunt(cfg, 8)
			if err != nil {
				t.Fatal(err)
			}
			if v == nil {
				t.Fatalf("harness did not catch injected fault %v within budget", f)
			}
			t.Logf("caught %v as %s (shrunk to %d steps)", f, v.Kind, len(c.Schedule))
			_, rerr := c.Run()
			var rv *Violation
			if !errors.As(rerr, &rv) || rv.Kind != v.Kind {
				t.Fatalf("shrunk case does not replay: %v", rerr)
			}
		})
	}
}
