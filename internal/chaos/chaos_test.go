package chaos

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"rbpc/internal/engine"
)

// smokeCfg is the bounded budget used in plain `go test`. The long
// harness (chaos_long_test.go, build tag "chaos") runs the same suite
// with a much larger budget under -race in the verify gate.
func smokeCfg() Config {
	return Config{Nodes: 14, TopoSeed: 3, Steps: 30, MaxDown: 3}
}

// TestConformanceClean: the production engine (FaultNone) survives the
// chaos schedules with every oracle green.
func TestConformanceClean(t *testing.T) {
	c, v, err := Hunt(smokeCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("production engine violated an oracle:\n%v\nschedule:\n%s", v, c.Schedule)
	}
}

// TestHarnessCatchesEveryFault is the harness's own conformance proof:
// for each injectable engine defect, the hunt must find a violation
// within the default budget, the shrunk counterexample must replay
// deterministically, and the corpus encoding must round-trip to an
// equally-failing case.
func TestHarnessCatchesEveryFault(t *testing.T) {
	for _, f := range engine.Faults() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			cfg := smokeCfg()
			cfg.Fault = f
			if f == engine.FaultStaleBypass {
				// The stale-bypass defect lives in the local-plan writer,
				// which only runs under a local scheme.
				cfg.Scheme = engine.SchemeBypass
			}
			c, v, err := Hunt(cfg, 4)
			if err != nil {
				t.Fatal(err)
			}
			if v == nil {
				t.Fatalf("harness did not catch injected fault %v within budget", f)
			}
			t.Logf("caught %v as %s (shrunk to %d steps)", f, v.Kind, len(c.Schedule))

			// Deterministic replay: the shrunk case fails the same way twice.
			for i := 0; i < 2; i++ {
				_, err := c.Run()
				var rv *Violation
				if !errors.As(err, &rv) {
					t.Fatalf("replay %d of shrunk case did not fail: %v", i, err)
				}
				if rv.Kind != v.Kind || rv.Step != v.Step {
					t.Fatalf("replay %d diverged: got %v, want %v", i, rv, v)
				}
			}

			// Corpus round-trip: encode, decode, and the decoded case still
			// fails identically.
			var buf bytes.Buffer
			if err := WriteCase(&buf, c); err != nil {
				t.Fatal(err)
			}
			rc, err := ReadCase(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadCase: %v\ncorpus:\n%s", err, buf.String())
			}
			if !reflect.DeepEqual(rc, c) {
				t.Fatalf("corpus round-trip changed the case:\ngot  %+v\nwant %+v", rc, c)
			}
			_, err = rc.Run()
			var rv *Violation
			if !errors.As(err, &rv) || rv.Kind != v.Kind {
				t.Fatalf("decoded case does not reproduce: %v", err)
			}
		})
	}
}

// TestSchemeConformanceClean runs the production engine through the same
// chaos schedules under every restoration scheme: the local flavors
// checked by exact Section-4 recomputation, hybrid both converged
// (zero-delay flood, flushed snapshots bit-identical to the source
// reference) and frozen (no source ever switches, the bypass flavor
// serves forever). Every oracle must stay green.
func TestSchemeConformanceClean(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scheme engine.Scheme
		frozen bool
	}{
		{"local", engine.SchemeLocal, false},
		{"bypass", engine.SchemeBypass, false},
		{"hybrid-converged", engine.SchemeHybrid, false},
		{"hybrid-frozen", engine.SchemeHybrid, true},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			cfg := smokeCfg()
			cfg.Scheme = tc.scheme
			cfg.FloodFrozen = tc.frozen
			c, v, err := Hunt(cfg, 3)
			if err != nil {
				t.Fatal(err)
			}
			if v != nil {
				t.Fatalf("%s engine violated an oracle:\n%v\nschedule:\n%s", tc.name, v, c.Schedule)
			}
		})
	}
}

// TestSchemeCorpusRoundTrip: scheme cases survive the corpus format, and
// source-scheme files stay byte-identical to the pre-scheme format (no
// scheme keys written).
func TestSchemeCorpusRoundTrip(t *testing.T) {
	cfg := smokeCfg()
	cfg.Scheme = engine.SchemeHybrid
	cfg.FloodFrozen = true
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCase(&buf, c); err != nil {
		t.Fatal(err)
	}
	rc, err := ReadCase(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadCase: %v\ncorpus:\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(rc, c) {
		t.Fatalf("corpus round-trip changed the case:\ngot  %+v\nwant %+v", rc, c)
	}

	src, err := Generate(smokeCfg())
	if err != nil {
		t.Fatal(err)
	}
	var sb bytes.Buffer
	if err := WriteCase(&sb, src); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"scheme", "flood-frozen"} {
		if bytes.Contains(sb.Bytes(), []byte(key)) {
			t.Fatalf("source-scheme corpus carries %q key:\n%s", key, sb.String())
		}
	}
}

// TestShrinkMinimal: the canonical stale-plan counterexample shrinks to a
// handful of steps — a shrinker that returns the full schedule is not
// doing its job.
func TestShrinkMinimal(t *testing.T) {
	cfg := smokeCfg()
	cfg.Fault = engine.FaultDropEpoch
	c, v, err := Hunt(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("drop-epoch not caught")
	}
	// The minimal drop-epoch reproduction is fail, repair, flush (3
	// steps); give the shrinker slack but insist on a real reduction.
	if len(c.Schedule) > 6 {
		t.Fatalf("shrunk schedule still has %d steps:\n%s", len(c.Schedule), c.Schedule)
	}
}

// TestRunTraceDeterministic: two runs of the same case produce identical
// discrete-event traces — the replayability guarantee corpus files rely
// on.
func TestRunTraceDeterministic(t *testing.T) {
	c, err := Generate(smokeCfg())
	if err != nil {
		t.Fatal(err)
	}
	r1, err1 := c.Run()
	r2, err2 := c.Run()
	if err1 != nil || err2 != nil {
		t.Fatalf("clean case failed: %v / %v", err1, err2)
	}
	if len(r1.Trace) == 0 {
		t.Fatal("run recorded no trace")
	}
	if !reflect.DeepEqual(r1.Trace, r2.Trace) {
		t.Fatal("two runs of the same case produced different event traces")
	}
	if r1.Queries == 0 || r1.Churn == 0 || r1.Probes == 0 {
		t.Fatalf("schedule exercised nothing: %+v", r1)
	}
}

// TestGenerateDeterministic: Generate is a pure function of the config.
func TestGenerateDeterministic(t *testing.T) {
	c1, err1 := Generate(smokeCfg())
	c2, err2 := Generate(smokeCfg())
	if err1 != nil || err2 != nil {
		t.Fatalf("Generate: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("Generate is not deterministic for a fixed config")
	}
}

// TestCorpusRejectsGarbage: malformed corpus files fail loudly.
func TestCorpusRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"",                                  // empty: no schedule section
		"nodes 12\n",                        // header only
		"nodes 12\nwibble 3\nschedule\n",    // unknown key
		"nodes 12\nfault lying\nschedule\n", // unknown fault
		"nodes 12\nscheme warp\nschedule\n", // unknown scheme
		"nodes 12\nflood-frozen x\nschedule\nfail 1\n", // non-numeric flag
		"nodes 12\nschedule\nexplode 1\n",              // unknown step
		"schedule\nfail 1\n",                           // missing nodes
		"nodes twelve\nschedule\nfail 1\n",             // non-numeric value
		"nodes 12 13\nschedule\nfail 1\n",              // extra operand
		"nodes 12\nschedule\nquery 1\n",                // short query
	} {
		if _, err := ReadCase(bytes.NewReader([]byte(bad))); err == nil {
			t.Errorf("ReadCase accepted garbage %q", bad)
		}
	}
}
