package chaos

import (
	"fmt"
	"math"
	"sort"

	"rbpc/internal/core"
	"rbpc/internal/engine"
	"rbpc/internal/graph"
	"rbpc/internal/mpls"
	"rbpc/internal/paths"
	"rbpc/internal/rbpc"
	"rbpc/internal/shard"
	"rbpc/internal/shardrpc"
)

// costEps is the tolerance for cost comparisons. Topology weights are
// small integers (Waxman links are unit weight), so any true divergence
// is at least 1; the epsilon only absorbs float association noise on
// weighted graphs.
const costEps = 1e-6

// checker holds the oracle state for one run. The harness calls it from
// the single schedule-execution goroutine, so it needs no locking.
type checker struct {
	g    *graph.Graph
	all  *paths.AllShortest // all-shortest base of the original graph (theorem DP)
	base *paths.Explicit    // provisioned base set (membership oracle)

	// scheme is the restoration scheme of the engine under test. Answer
	// checks dispatch on each Route's own Via flavor; the scheme decides
	// how a nil answer for a connected pair is judged (only edge-bypass
	// may honestly fail one) and how flushed snapshots compare to the
	// source-scheme reference.
	scheme engine.Scheme
	// prim is the pristine primary per pair — the input of the local
	// schemes' Section-4 constructions, recomputed here independently.
	prim map[rbpc.Pair]*mpls.LSP

	// lastEpoch tracks query-stream monotonicity per epoch sequence:
	// key 0 for the single engine, the shard index in sharded runs (each
	// shard publishes its own independent epoch counter).
	lastEpoch map[int]uint64
	probes    int

	// Dijkstra scratch, reused across checks.
	dist []float64
	done []bool
}

func newChecker(w *world, scheme engine.Scheme) *checker {
	n := w.g.Order()
	return &checker{
		g:         w.g,
		all:       w.all,
		base:      w.sys.Base(),
		scheme:    scheme,
		prim:      w.prim,
		lastEpoch: make(map[int]uint64),
		dist:      make([]float64, n),
		done:      make([]bool, n),
	}
}

// bruteDist is the independent reference: a naive O(n^2) Dijkstra over
// the original adjacency minus the down edges. It deliberately shares no
// code with internal/spath (no heap, no CSR, no failure views), so a bug
// in the optimized solvers cannot hide itself here.
func (ck *checker) bruteDist(down map[graph.EdgeID]bool, s, d graph.NodeID) float64 {
	n := ck.g.Order()
	inf := math.Inf(1)
	for i := 0; i < n; i++ {
		ck.dist[i] = inf
		ck.done[i] = false
	}
	ck.dist[s] = 0
	for {
		u := graph.NodeID(-1)
		best := inf
		for v := 0; v < n; v++ {
			if !ck.done[v] && ck.dist[v] < best {
				best, u = ck.dist[v], graph.NodeID(v)
			}
		}
		if u < 0 {
			return ck.dist[d]
		}
		if u == d {
			return ck.dist[u]
		}
		ck.done[u] = true
		for _, a := range ck.g.Arcs(u) {
			if down[a.Edge] {
				continue
			}
			if w := ck.dist[u] + ck.g.Edge(a.Edge).W; w < ck.dist[a.To] {
				ck.dist[a.To] = w
			}
		}
	}
}

// checkResult validates one served answer against the epoch it was
// served from. All checks are relative to res.Snap, so they are sound
// regardless of which epoch a racing query happened to observe. sh is
// the epoch-sequence key — 0 for a single engine, the owning shard's
// index in sharded runs.
func (ck *checker) checkResult(step, sh int, res engine.Result) *Violation {
	snap := res.Snap
	vio := func(kind, format string, args ...interface{}) *Violation {
		return &Violation{Step: step, Epoch: snap.Epoch(), Kind: kind,
			Detail: fmt.Sprintf("%d->%d ", res.Src, res.Dst) + fmt.Sprintf(format, args...)}
	}

	// Oracle (d), first half: the serial query stream must never walk
	// backwards in epochs — the atomic snapshot swap makes published
	// epochs immediately and permanently visible.
	if snap.Epoch() < ck.lastEpoch[sh] {
		return vio("monotonicity", "observed epoch %d after epoch %d", snap.Epoch(), ck.lastEpoch[sh])
	}
	ck.lastEpoch[sh] = snap.Epoch()

	failed := snap.Failed()
	k := len(failed)
	down := make(map[graph.EdgeID]bool, k)
	for _, e := range failed {
		down[e] = true
	}

	if res.Route == nil {
		if res.Src == res.Dst || math.IsInf(ck.bruteDist(down, res.Src, res.Dst), 1) {
			return nil
		}
		// The pair is connected. Edge-bypass (and hybrid before its
		// horizon) is the one flavor that may honestly fail a connected
		// pair: a detour must exist around every down crossing of its
		// primary, and a crossing whose endpoints the failures disconnect
		// has none. Every other nil answer is a violation.
		if ck.scheme == engine.SchemeBypass || ck.scheme == engine.SchemeHybrid {
			lr, affected := snap.LocalRoutes()[rbpc.Pair{Src: res.Src, Dst: res.Dst}]
			if affected && lr == nil && ck.bypassBlocked(down, res.Src, res.Dst) {
				return nil
			}
		}
		return vio("unroutable-but-connected", "reported unroutable, but a path survives %v", failed)
	}
	rt := res.Route

	// Local-flavor answers (end-route and edge-bypass patches) carry a
	// concrete path instead of source components; they are held to an
	// exact independent recomputation of their Section-4 construction.
	if rt.Via != engine.SchemeSource {
		return ck.checkLocalResult(step, snap, down, res.Src, res.Dst, rt)
	}

	// A hybrid snapshot that has not converged serves honestly stale
	// source answers: phase one carries the previous epoch's rows because
	// the sources have not heard the flood yet. The fresh oracles for
	// this failed-set are the local answers (checked above); the stale
	// rows are only checked for chain continuity and, when the advertised
	// path is still fully alive, data-plane delivery.
	if snap.Scheme() == engine.SchemeHybrid && !snap.Converged() {
		return ck.checkStaleSource(step, snap, down, res.Src, res.Dst, rt)
	}

	// Structural validity: the components chain src to dst and ride only
	// links alive in this epoch.
	at := res.Src
	for i, l := range rt.LSPs {
		if l.Path.Src() != at {
			return vio("chain", "component %d starts at %d, want %d", i, l.Path.Src(), at)
		}
		for _, e := range l.Path.Edges {
			if down[e] {
				return vio("dead-edge", "component %d rides failed link %d (failed-set %v)", i, e, failed)
			}
		}
		at = l.Path.Dst()
	}
	if at != res.Dst {
		return vio("chain", "concatenation ends at %d", at)
	}

	// Oracle (c): Corollary-4 membership. Restoration only concatenates
	// pre-provisioned base paths and bare edges — every multi-hop
	// component must be a member of the provisioned base set.
	for i, l := range rt.LSPs {
		if l.Path.Hops() > 1 && !ck.base.Contains(l.Path) {
			return vio("membership", "component %d (%v) is not a provisioned base path", i, l.Path)
		}
	}

	// Oracle (b), served form: at most k+1 base paths interleaved with at
	// most k bare edges means at most 2k+1 components in total.
	if len(rt.LSPs) > 2*k+1 {
		return vio("interleaving-bound", "%d components for k=%d failures (bound %d)", len(rt.LSPs), k, 2*k+1)
	}

	// Oracle (a): the served cost must be the true post-failure shortest
	// distance, per the independent Dijkstra.
	want := ck.bruteDist(down, res.Src, res.Dst)
	if math.IsInf(want, 1) {
		return vio("optimality", "served a route but the pair is disconnected under %v", failed)
	}
	if math.Abs(rt.Cost-want) > costEps {
		return vio("optimality", "served cost %v, post-failure shortest %v (failed %v)", rt.Cost, want, failed)
	}

	// Oracle (b), theorem form: the served path must admit a
	// decomposition into at most k+1 original shortest paths with at most
	// k bare edges — the exact DP behind Theorems 2/3.
	full := rt.LSPs[0].Path
	for _, l := range rt.LSPs[1:] {
		full = full.Concat(l.Path)
	}
	if min := core.MinPathComponents(ck.all, full, k); min < 0 || min > k+1 {
		return vio("theorem-bound", "served path needs %d shortest-path components with <= %d edges (bound %d)", min, k, k+1)
	}

	// End-to-end forwarding on the epoch's own data plane: the installed
	// label stacks must deliver, and on unit-weight topologies must walk
	// exactly the served cost. DataPlane picks the plane the answer was
	// served from (the phase-one net for pre-horizon hybrid sources).
	ck.probes++
	pkt, err := snap.DataPlane(res.Src).SendIP(res.Src, res.Dst)
	if err != nil {
		return vio("forwarding", "data plane dropped the packet: %v", err)
	}
	if pkt.At != res.Dst {
		return vio("forwarding", "data plane delivered to %d", pkt.At)
	}
	if ck.g.UnitWeights() && math.Abs(float64(pkt.Hops)-rt.Cost) > costEps {
		return vio("forwarding", "data plane walked %d hops, served cost %v (stale forwarding state)", pkt.Hops, rt.Cost)
	}
	return nil
}

// checkRemoteAnswer validates one wire answer served by a process-mode
// worker. All checks are relative to the answer's own epoch and
// failed-set — exactly what crossed the transport — so they are sound
// even while a racing burst is still in flight to the worker. The
// coordinator cannot walk a remote worker's data plane, so the
// forwarding probe is the one oracle not run here (the delivery verdict
// is exercised end-to-end by the prober's ProbeQuery path instead);
// everything else matches checkResult's source-scheme chain. sh keys
// the per-worker epoch sequence as in checkResult.
func (ck *checker) checkRemoteAnswer(step, sh int, src, dst graph.NodeID, ans shardrpc.Answer, err error) *Violation {
	vio := func(kind, format string, args ...interface{}) *Violation {
		return &Violation{Step: step, Epoch: ans.Epoch, Kind: kind,
			Detail: fmt.Sprintf("%d->%d ", src, dst) + fmt.Sprintf(format, args...)}
	}
	if err != nil {
		return vio("transport", "remote query failed: %v", err)
	}
	if ans.Epoch < ck.lastEpoch[sh] {
		return vio("monotonicity", "observed epoch %d after epoch %d", ans.Epoch, ck.lastEpoch[sh])
	}
	ck.lastEpoch[sh] = ans.Epoch

	failed := ans.Failed
	k := len(failed)
	down := make(map[graph.EdgeID]bool, k)
	for _, e := range failed {
		down[e] = true
	}

	if ans.Route == nil {
		if src == dst || math.IsInf(ck.bruteDist(down, src, dst), 1) {
			return nil
		}
		return vio("unroutable-but-connected", "reported unroutable, but a path survives %v", failed)
	}
	rt := ans.Route
	if rt.Via != engine.SchemeSource {
		return vio("chain", "process-mode answer flavor %v, want source", rt.Via)
	}
	if len(rt.LSPs) == 0 {
		return vio("chain", "route carries no components")
	}

	// Structural validity: the components chain src to dst and ride only
	// links alive in the answering epoch.
	at := src
	for i, l := range rt.LSPs {
		if l.Path.Src() != at {
			return vio("chain", "component %d starts at %d, want %d", i, l.Path.Src(), at)
		}
		for _, e := range l.Path.Edges {
			if down[e] {
				return vio("dead-edge", "component %d rides failed link %d (failed-set %v)", i, e, failed)
			}
		}
		at = l.Path.Dst()
	}
	if at != dst {
		return vio("chain", "concatenation ends at %d", at)
	}

	// Corollary-4 membership, interleaving bound, optimality, and the
	// theorem DP — the same oracles checkResult runs on a local snapshot.
	for i, l := range rt.LSPs {
		if l.Path.Hops() > 1 && !ck.base.Contains(l.Path) {
			return vio("membership", "component %d (%v) is not a provisioned base path", i, l.Path)
		}
	}
	if len(rt.LSPs) > 2*k+1 {
		return vio("interleaving-bound", "%d components for k=%d failures (bound %d)", len(rt.LSPs), k, 2*k+1)
	}
	want := ck.bruteDist(down, src, dst)
	if math.IsInf(want, 1) {
		return vio("optimality", "served a route but the pair is disconnected under %v", failed)
	}
	if math.Abs(rt.Cost-want) > costEps {
		return vio("optimality", "served cost %v, post-failure shortest %v (failed %v)", rt.Cost, want, failed)
	}
	full := rt.LSPs[0].Path
	for _, l := range rt.LSPs[1:] {
		full = full.Concat(l.Path)
	}
	if min := core.MinPathComponents(ck.all, full, k); min < 0 || min > k+1 {
		return vio("theorem-bound", "served path needs %d shortest-path components with <= %d edges (bound %d)", min, k, k+1)
	}
	return nil
}

// checkLocalResult validates an end-route or edge-bypass answer: a
// structurally-sound path over alive links whose advertised cost equals
// both the path's own cost and an exact independent recomputation of the
// flavor's Section-4 construction, at or above the true post-failure
// shortest distance, and whose patched data plane delivers the probe in
// exactly the advertised number of hops.
func (ck *checker) checkLocalResult(step int, snap *engine.Snapshot, down map[graph.EdgeID]bool, src, dst graph.NodeID, rt *engine.Route) *Violation {
	vio := func(kind, format string, args ...interface{}) *Violation {
		return &Violation{Step: step, Epoch: snap.Epoch(), Kind: kind,
			Detail: fmt.Sprintf("%d->%d ", src, dst) + fmt.Sprintf(format, args...)}
	}
	if rt.Via != engine.SchemeLocal && rt.Via != engine.SchemeBypass {
		return vio("chain", "unknown answer flavor %v", rt.Via)
	}
	if len(rt.LSPs) != 0 || len(rt.Stack) != 0 {
		return vio("chain", "local answer carries source components")
	}
	p := rt.Path
	if len(p.Nodes) != len(p.Edges)+1 || p.Src() != src || p.Dst() != dst {
		return vio("chain", "local path runs %v, want %d->%d", p.Nodes, src, dst)
	}
	var cost float64
	for i, ed := range p.Edges {
		e := ck.g.Edge(ed)
		u, v := p.Nodes[i], p.Nodes[i+1]
		if !(e.U == u && e.V == v) && !(e.U == v && e.V == u) {
			return vio("chain", "hop %d rides link %d-%d, path says %d-%d", i, e.U, e.V, u, v)
		}
		if down[ed] {
			return vio("dead-edge", "local path rides failed link %d (failed-set %v)", ed, snap.Failed())
		}
		cost += e.W
	}
	if math.Abs(cost-rt.Cost) > costEps {
		return vio("local-exact", "advertised cost %v, but the served path costs %v", rt.Cost, cost)
	}
	if want := ck.bruteDist(down, src, dst); rt.Cost < want-costEps {
		return vio("optimality", "served cost %v beats the post-failure shortest %v", rt.Cost, want)
	}
	lsp := ck.prim[rbpc.Pair{Src: src, Dst: dst}]
	if lsp == nil {
		return vio("local-exact", "local answer for a pair with no provisioned primary")
	}
	exact, ok := ck.localExactCost(rt.Via, down, lsp, dst)
	if !ok {
		return vio("local-exact", "the %v construction has no answer for this failed-set, yet one was served", rt.Via)
	}
	if math.Abs(rt.Cost-exact) > costEps {
		return vio("local-exact", "served cost %v, independent %v recomputation says %v", rt.Cost, rt.Via, exact)
	}
	ck.probes++
	pkt, err := snap.DataPlane(src).SendIP(src, dst)
	// Before a hybrid snapshot converges, the source's FEC entry is its
	// last pre-flood plan — possibly a previous transition's restoration
	// plan, not the canonical primary this local answer patches — so the
	// probe may honestly walk a different (patched) route than the
	// advertised path. Delivery must still work unless some down link is
	// non-bridgeable, in which case the patch that would carry the stale
	// plan provably cannot exist.
	if relaxed := snap.Scheme() == engine.SchemeHybrid && !snap.Converged(); relaxed {
		if err != nil || pkt.At != dst {
			for _, ed := range snap.Failed() {
				e := ck.g.Edge(ed)
				if math.IsInf(ck.bruteDist(down, e.U, e.V), 1) {
					return nil
				}
			}
			return vio("forwarding", "pre-horizon data plane did not deliver (at %v, err %v) with every failed link bridgeable", pkt, err)
		}
		return nil
	}
	if err != nil {
		return vio("forwarding", "data plane dropped the packet: %v", err)
	}
	if pkt.At != dst {
		return vio("forwarding", "data plane delivered to %d (label-stack rewrite broken)", pkt.At)
	}
	if pkt.Hops != p.Hops() {
		return vio("forwarding", "data plane walked %d hops, served path has %d", pkt.Hops, p.Hops())
	}
	return nil
}

// checkStaleSource loosely validates a pre-convergence hybrid source
// answer: the components must still chain src to dst, and when the
// advertised path is fully alive the phase-one data plane must deliver.
// A path riding a newly-down link is exactly the honest staleness the
// hybrid scheme models — the patched ILM rows, not this answer, carry
// the traffic until the source's horizon passes — so nothing further is
// checked against this epoch.
func (ck *checker) checkStaleSource(step int, snap *engine.Snapshot, down map[graph.EdgeID]bool, src, dst graph.NodeID, rt *engine.Route) *Violation {
	vio := func(kind, format string, args ...interface{}) *Violation {
		return &Violation{Step: step, Epoch: snap.Epoch(), Kind: kind,
			Detail: fmt.Sprintf("%d->%d ", src, dst) + fmt.Sprintf(format, args...)}
	}
	at := src
	stale := false
	for i, l := range rt.LSPs {
		if l.Path.Src() != at {
			return vio("chain", "component %d starts at %d, want %d", i, l.Path.Src(), at)
		}
		for _, e := range l.Path.Edges {
			if down[e] {
				stale = true
			}
		}
		at = l.Path.Dst()
	}
	if at != dst {
		return vio("chain", "concatenation ends at %d", at)
	}
	if stale {
		return nil
	}
	ck.probes++
	pkt, err := snap.DataPlane(src).SendIP(src, dst)
	if err != nil {
		return vio("forwarding", "data plane dropped the packet: %v", err)
	}
	if pkt.At != dst {
		return vio("forwarding", "data plane delivered to %d", pkt.At)
	}
	return nil
}

// localExactCost recomputes, independently of the engine, the cost the
// flavor's Section-4 construction must serve for the pair with primary
// lsp: end-route follows the primary to its first down crossing and
// detours to the destination; edge-bypass keeps the primary and splices
// every down crossing with a detour between its endpoints. Both detours
// are post-failure shortest paths, so bruteDist (which shares no code
// with the engine's solvers) makes the recomputation exact. ok is false
// when the construction has no answer — a required detour's endpoints
// are disconnected, or (end-route) the primary has no down crossing.
func (ck *checker) localExactCost(via engine.Scheme, down map[graph.EdgeID]bool, lsp *mpls.LSP, dst graph.NodeID) (cost float64, ok bool) {
	if via == engine.SchemeLocal {
		var prefix float64
		for i, e := range lsp.Path.Edges {
			if down[e] {
				d := ck.bruteDist(down, lsp.Path.Nodes[i], dst)
				if math.IsInf(d, 1) {
					return 0, false
				}
				return prefix + d, true
			}
			prefix += ck.g.Edge(e).W
		}
		return 0, false
	}
	for i, e := range lsp.Path.Edges {
		if !down[e] {
			cost += ck.g.Edge(e).W
			continue
		}
		d := ck.bruteDist(down, lsp.Path.Nodes[i], lsp.Path.Nodes[i+1])
		if math.IsInf(d, 1) {
			return 0, false
		}
		cost += d
	}
	return cost, true
}

// bypassBlocked reports whether edge-bypass honestly cannot restore the
// pair: its primary has a down crossing whose endpoints the failures
// disconnect, so no detour exists. (With only connected crossings the
// construction always succeeds, so a nil bypass answer for a connected
// pair is a violation unless this holds.)
func (ck *checker) bypassBlocked(down map[graph.EdgeID]bool, src, dst graph.NodeID) bool {
	lsp := ck.prim[rbpc.Pair{Src: src, Dst: dst}]
	if lsp == nil {
		return false
	}
	_, ok := ck.localExactCost(engine.SchemeBypass, down, lsp, dst)
	return !ok
}

// checkEquivalence compares the flushed snapshot of the engine under test
// against the lockstep FullRebuild reference: same failed-set, and for
// every pair whose answer is source-flavored the same routability, the
// same cost bits, and the same component path sequences. Label stacks are
// deliberately excluded (label numbers depend on signaling order, which
// the contract does not cover); a deterministic per-flush sample of
// oracle distances is compared at the bit level too. Intermediate epoch
// counts are not compared — the two writers may coalesce bursts
// differently — but flushed serving state is path-independent for a
// correct engine, which is exactly the property the incremental builder
// must preserve.
//
// Local-flavor answers (end-route/edge-bypass schemes, or a hybrid whose
// flood is frozen) cannot bit-match the source reference: they are held
// instead to the exact Section-4 recomputation at or above the
// reference's optimum, and a nil answer against a routable reference is
// tolerated only for a provably blocked edge-bypass. A converged hybrid
// serves source answers everywhere, so it must bit-match in full — the
// machine check of the switchover property.
func (ck *checker) checkEquivalence(step int, got, want *engine.Snapshot) *Violation {
	vio := func(format string, args ...interface{}) *Violation {
		return &Violation{Step: step, Epoch: got.Epoch(), Kind: "equivalence",
			Detail: fmt.Sprintf(format, args...)}
	}
	gf, wf := got.Failed(), want.Failed()
	if len(gf) != len(wf) {
		return vio("failed-set %v, reference %v", gf, wf)
	}
	for i := range gf {
		if gf[i] != wf[i] {
			return vio("failed-set %v, reference %v", gf, wf)
		}
	}
	down := make(map[graph.EdgeID]bool, len(gf))
	for _, e := range gf {
		down[e] = true
	}
	n := ck.g.Order()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			src, dst := graph.NodeID(s), graph.NodeID(d)
			a, b := got.Route(src, dst), want.Route(src, dst)
			if a == nil && b == nil {
				continue
			}
			if a == nil {
				if (ck.scheme == engine.SchemeBypass || ck.scheme == engine.SchemeHybrid) &&
					ck.bypassBlocked(down, src, dst) {
					continue
				}
				return vio("pair %d->%d routable false, reference true (failed %v)", s, d, gf)
			}
			if b == nil {
				return vio("pair %d->%d routable true, reference false (failed %v)", s, d, gf)
			}
			if a.Via != engine.SchemeSource {
				lsp := ck.prim[rbpc.Pair{Src: src, Dst: dst}]
				if lsp == nil {
					return vio("pair %d->%d local answer with no provisioned primary", s, d)
				}
				exact, ok := ck.localExactCost(a.Via, down, lsp, dst)
				if !ok || math.Abs(a.Cost-exact) > costEps {
					return vio("pair %d->%d local cost %v, independent %v recomputation says %v (failed %v)",
						s, d, a.Cost, a.Via, exact, gf)
				}
				if a.Cost < b.Cost-costEps {
					return vio("pair %d->%d local cost %v beats the reference optimum %v", s, d, a.Cost, b.Cost)
				}
				continue
			}
			if math.Float64bits(a.Cost) != math.Float64bits(b.Cost) {
				return vio("pair %d->%d cost %v, reference %v (failed %v)", s, d, a.Cost, b.Cost, gf)
			}
			if len(a.LSPs) != len(b.LSPs) {
				return vio("pair %d->%d has %d components, reference %d", s, d, len(a.LSPs), len(b.LSPs))
			}
			for i := range a.LSPs {
				if !a.LSPs[i].Path.Equal(b.LSPs[i].Path) {
					return vio("pair %d->%d component %d path %v, reference %v", s, d, i, a.LSPs[i].Path, b.LSPs[i].Path)
				}
			}
		}
	}
	for k := 0; k < 8; k++ {
		src := graph.NodeID((step*5 + k*3) % n)
		dst := graph.NodeID((step*7 + k*11 + 1) % n)
		da, db := got.Oracle().Dist(src, dst), want.Oracle().Dist(src, dst)
		if math.Float64bits(da) != math.Float64bits(db) {
			return vio("dist %d->%d = %v, reference %v (failed %v)", src, dst, da, db, gf)
		}
	}
	return nil
}

// checkShardEquivalence is checkEquivalence for a sharded run: every
// shard snapshot of the consistent view must carry the reference's
// failed-set, every pair (answered by its owner shard) must match the
// reference's routability, cost bits, and component path sequence, and
// the sampled oracle distances — taken from the owning shard's snapshot —
// must be bit-identical too.
func (ck *checker) checkShardEquivalence(step int, v shard.View, want *engine.Snapshot) *Violation {
	wf := want.Failed()
	for s := 0; s < v.Shards(); s++ {
		snap := v.Shard(s)
		gf := snap.Failed()
		agree := len(gf) == len(wf)
		for i := 0; agree && i < len(gf); i++ {
			agree = gf[i] == wf[i]
		}
		if !agree {
			return &Violation{Step: step, Epoch: snap.Epoch(), Kind: "equivalence",
				Detail: fmt.Sprintf("shard %d failed-set %v, reference %v", s, gf, wf)}
		}
	}
	n := ck.g.Order()
	for s := 0; s < n; s++ {
		src := graph.NodeID(s)
		snap := v.Snap(src)
		vio := func(format string, args ...interface{}) *Violation {
			return &Violation{Step: step, Epoch: snap.Epoch(), Kind: "equivalence",
				Detail: fmt.Sprintf(format, args...)}
		}
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			dst := graph.NodeID(d)
			a, b := snap.Route(src, dst), want.Route(src, dst)
			if (a == nil) != (b == nil) {
				return vio("pair %d->%d routable %v, reference %v (failed %v)", s, d, a != nil, b != nil, wf)
			}
			if a == nil {
				continue
			}
			if math.Float64bits(a.Cost) != math.Float64bits(b.Cost) {
				return vio("pair %d->%d cost %v, reference %v (failed %v)", s, d, a.Cost, b.Cost, wf)
			}
			if len(a.LSPs) != len(b.LSPs) {
				return vio("pair %d->%d has %d components, reference %d", s, d, len(a.LSPs), len(b.LSPs))
			}
			for i := range a.LSPs {
				if !a.LSPs[i].Path.Equal(b.LSPs[i].Path) {
					return vio("pair %d->%d component %d path %v, reference %v", s, d, i, a.LSPs[i].Path, b.LSPs[i].Path)
				}
			}
		}
	}
	for k := 0; k < 8; k++ {
		src := graph.NodeID((step*5 + k*3) % n)
		dst := graph.NodeID((step*7 + k*11 + 1) % n)
		da, db := v.Snap(src).Oracle().Dist(src, dst), want.Oracle().Dist(src, dst)
		if math.Float64bits(da) != math.Float64bits(db) {
			return &Violation{Step: step, Epoch: v.Snap(src).Epoch(), Kind: "equivalence",
				Detail: fmt.Sprintf("dist %d->%d = %v, reference %v (failed %v)", src, dst, da, db, wf)}
		}
	}
	return nil
}

// checkFlush validates the snapshot after a flush barrier: oracle (d),
// second half. Every event sent before the flush is reflected, so the
// snapshot's failed-set must equal the reference model exactly. sh keys
// the epoch sequence as in checkResult.
func (ck *checker) checkFlush(step, sh int, snap *engine.Snapshot, model map[graph.EdgeID]bool) *Violation {
	if snap.Epoch() < ck.lastEpoch[sh] {
		return &Violation{Step: step, Epoch: snap.Epoch(), Kind: "monotonicity",
			Detail: fmt.Sprintf("flushed epoch %d after epoch %d", snap.Epoch(), ck.lastEpoch[sh])}
	}
	ck.lastEpoch[sh] = snap.Epoch()

	failed := snap.Failed()
	agree := len(failed) == len(model)
	if agree {
		for _, e := range failed {
			if !model[e] {
				agree = false
				break
			}
		}
	}
	if !agree {
		want := make([]graph.EdgeID, 0, len(model))
		for e := range model {
			want = append(want, e)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		return &Violation{Step: step, Epoch: snap.Epoch(), Kind: "flush-agreement",
			Detail: fmt.Sprintf("snapshot failed-set %v, event stream says %v", failed, want)}
	}
	return nil
}
