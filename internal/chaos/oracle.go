package chaos

import (
	"fmt"
	"math"
	"sort"

	"rbpc/internal/core"
	"rbpc/internal/engine"
	"rbpc/internal/graph"
	"rbpc/internal/paths"
	"rbpc/internal/shard"
)

// costEps is the tolerance for cost comparisons. Topology weights are
// small integers (Waxman links are unit weight), so any true divergence
// is at least 1; the epsilon only absorbs float association noise on
// weighted graphs.
const costEps = 1e-6

// checker holds the oracle state for one run. The harness calls it from
// the single schedule-execution goroutine, so it needs no locking.
type checker struct {
	g    *graph.Graph
	all  *paths.AllShortest // all-shortest base of the original graph (theorem DP)
	base *paths.Explicit    // provisioned base set (membership oracle)

	// lastEpoch tracks query-stream monotonicity per epoch sequence:
	// key 0 for the single engine, the shard index in sharded runs (each
	// shard publishes its own independent epoch counter).
	lastEpoch map[int]uint64
	probes    int

	// Dijkstra scratch, reused across checks.
	dist []float64
	done []bool
}

func newChecker(w *world) *checker {
	n := w.g.Order()
	return &checker{
		g:         w.g,
		all:       w.all,
		base:      w.sys.Base(),
		lastEpoch: make(map[int]uint64),
		dist:      make([]float64, n),
		done:      make([]bool, n),
	}
}

// bruteDist is the independent reference: a naive O(n^2) Dijkstra over
// the original adjacency minus the down edges. It deliberately shares no
// code with internal/spath (no heap, no CSR, no failure views), so a bug
// in the optimized solvers cannot hide itself here.
func (ck *checker) bruteDist(down map[graph.EdgeID]bool, s, d graph.NodeID) float64 {
	n := ck.g.Order()
	inf := math.Inf(1)
	for i := 0; i < n; i++ {
		ck.dist[i] = inf
		ck.done[i] = false
	}
	ck.dist[s] = 0
	for {
		u := graph.NodeID(-1)
		best := inf
		for v := 0; v < n; v++ {
			if !ck.done[v] && ck.dist[v] < best {
				best, u = ck.dist[v], graph.NodeID(v)
			}
		}
		if u < 0 {
			return ck.dist[d]
		}
		if u == d {
			return ck.dist[u]
		}
		ck.done[u] = true
		for _, a := range ck.g.Arcs(u) {
			if down[a.Edge] {
				continue
			}
			if w := ck.dist[u] + ck.g.Edge(a.Edge).W; w < ck.dist[a.To] {
				ck.dist[a.To] = w
			}
		}
	}
}

// checkResult validates one served answer against the epoch it was
// served from. All checks are relative to res.Snap, so they are sound
// regardless of which epoch a racing query happened to observe. sh is
// the epoch-sequence key — 0 for a single engine, the owning shard's
// index in sharded runs.
func (ck *checker) checkResult(step, sh int, res engine.Result) *Violation {
	snap := res.Snap
	vio := func(kind, format string, args ...interface{}) *Violation {
		return &Violation{Step: step, Epoch: snap.Epoch(), Kind: kind,
			Detail: fmt.Sprintf("%d->%d ", res.Src, res.Dst) + fmt.Sprintf(format, args...)}
	}

	// Oracle (d), first half: the serial query stream must never walk
	// backwards in epochs — the atomic snapshot swap makes published
	// epochs immediately and permanently visible.
	if snap.Epoch() < ck.lastEpoch[sh] {
		return vio("monotonicity", "observed epoch %d after epoch %d", snap.Epoch(), ck.lastEpoch[sh])
	}
	ck.lastEpoch[sh] = snap.Epoch()

	failed := snap.Failed()
	k := len(failed)
	down := make(map[graph.EdgeID]bool, k)
	for _, e := range failed {
		down[e] = true
	}

	if res.Route == nil {
		if res.Src != res.Dst && !math.IsInf(ck.bruteDist(down, res.Src, res.Dst), 1) {
			return vio("unroutable-but-connected", "reported unroutable, but a path survives %v", failed)
		}
		return nil
	}
	rt := res.Route

	// Structural validity: the components chain src to dst and ride only
	// links alive in this epoch.
	at := res.Src
	for i, l := range rt.LSPs {
		if l.Path.Src() != at {
			return vio("chain", "component %d starts at %d, want %d", i, l.Path.Src(), at)
		}
		for _, e := range l.Path.Edges {
			if down[e] {
				return vio("dead-edge", "component %d rides failed link %d (failed-set %v)", i, e, failed)
			}
		}
		at = l.Path.Dst()
	}
	if at != res.Dst {
		return vio("chain", "concatenation ends at %d", at)
	}

	// Oracle (c): Corollary-4 membership. Restoration only concatenates
	// pre-provisioned base paths and bare edges — every multi-hop
	// component must be a member of the provisioned base set.
	for i, l := range rt.LSPs {
		if l.Path.Hops() > 1 && !ck.base.Contains(l.Path) {
			return vio("membership", "component %d (%v) is not a provisioned base path", i, l.Path)
		}
	}

	// Oracle (b), served form: at most k+1 base paths interleaved with at
	// most k bare edges means at most 2k+1 components in total.
	if len(rt.LSPs) > 2*k+1 {
		return vio("interleaving-bound", "%d components for k=%d failures (bound %d)", len(rt.LSPs), k, 2*k+1)
	}

	// Oracle (a): the served cost must be the true post-failure shortest
	// distance, per the independent Dijkstra.
	want := ck.bruteDist(down, res.Src, res.Dst)
	if math.IsInf(want, 1) {
		return vio("optimality", "served a route but the pair is disconnected under %v", failed)
	}
	if math.Abs(rt.Cost-want) > costEps {
		return vio("optimality", "served cost %v, post-failure shortest %v (failed %v)", rt.Cost, want, failed)
	}

	// Oracle (b), theorem form: the served path must admit a
	// decomposition into at most k+1 original shortest paths with at most
	// k bare edges — the exact DP behind Theorems 2/3.
	full := rt.LSPs[0].Path
	for _, l := range rt.LSPs[1:] {
		full = full.Concat(l.Path)
	}
	if min := core.MinPathComponents(ck.all, full, k); min < 0 || min > k+1 {
		return vio("theorem-bound", "served path needs %d shortest-path components with <= %d edges (bound %d)", min, k, k+1)
	}

	// End-to-end forwarding on the epoch's own data plane: the installed
	// label stacks must deliver, and on unit-weight topologies must walk
	// exactly the served cost.
	ck.probes++
	pkt, err := snap.Net().SendIP(res.Src, res.Dst)
	if err != nil {
		return vio("forwarding", "data plane dropped the packet: %v", err)
	}
	if pkt.At != res.Dst {
		return vio("forwarding", "data plane delivered to %d", pkt.At)
	}
	if ck.g.UnitWeights() && math.Abs(float64(pkt.Hops)-rt.Cost) > costEps {
		return vio("forwarding", "data plane walked %d hops, served cost %v (stale forwarding state)", pkt.Hops, rt.Cost)
	}
	return nil
}

// checkEquivalence compares the flushed snapshot of the engine under test
// against the lockstep FullRebuild reference: same failed-set, and for
// every pair the same routability, the same cost bits, and the same
// component path sequences. Label stacks are deliberately excluded (label
// numbers depend on signaling order, which the contract does not cover);
// a deterministic per-flush sample of oracle distances is compared at the
// bit level too. Intermediate epoch counts are not compared — the two
// writers may coalesce bursts differently — but flushed serving state is
// path-independent for a correct engine, which is exactly the property
// the incremental builder must preserve.
func (ck *checker) checkEquivalence(step int, got, want *engine.Snapshot) *Violation {
	vio := func(format string, args ...interface{}) *Violation {
		return &Violation{Step: step, Epoch: got.Epoch(), Kind: "equivalence",
			Detail: fmt.Sprintf(format, args...)}
	}
	gf, wf := got.Failed(), want.Failed()
	if len(gf) != len(wf) {
		return vio("failed-set %v, reference %v", gf, wf)
	}
	for i := range gf {
		if gf[i] != wf[i] {
			return vio("failed-set %v, reference %v", gf, wf)
		}
	}
	n := ck.g.Order()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			src, dst := graph.NodeID(s), graph.NodeID(d)
			a, b := got.Route(src, dst), want.Route(src, dst)
			if (a == nil) != (b == nil) {
				return vio("pair %d->%d routable %v, reference %v (failed %v)", s, d, a != nil, b != nil, gf)
			}
			if a == nil {
				continue
			}
			if math.Float64bits(a.Cost) != math.Float64bits(b.Cost) {
				return vio("pair %d->%d cost %v, reference %v (failed %v)", s, d, a.Cost, b.Cost, gf)
			}
			if len(a.LSPs) != len(b.LSPs) {
				return vio("pair %d->%d has %d components, reference %d", s, d, len(a.LSPs), len(b.LSPs))
			}
			for i := range a.LSPs {
				if !a.LSPs[i].Path.Equal(b.LSPs[i].Path) {
					return vio("pair %d->%d component %d path %v, reference %v", s, d, i, a.LSPs[i].Path, b.LSPs[i].Path)
				}
			}
		}
	}
	for k := 0; k < 8; k++ {
		src := graph.NodeID((step*5 + k*3) % n)
		dst := graph.NodeID((step*7 + k*11 + 1) % n)
		da, db := got.Oracle().Dist(src, dst), want.Oracle().Dist(src, dst)
		if math.Float64bits(da) != math.Float64bits(db) {
			return vio("dist %d->%d = %v, reference %v (failed %v)", src, dst, da, db, gf)
		}
	}
	return nil
}

// checkShardEquivalence is checkEquivalence for a sharded run: every
// shard snapshot of the consistent view must carry the reference's
// failed-set, every pair (answered by its owner shard) must match the
// reference's routability, cost bits, and component path sequence, and
// the sampled oracle distances — taken from the owning shard's snapshot —
// must be bit-identical too.
func (ck *checker) checkShardEquivalence(step int, v shard.View, want *engine.Snapshot) *Violation {
	wf := want.Failed()
	for s := 0; s < v.Shards(); s++ {
		snap := v.Shard(s)
		gf := snap.Failed()
		agree := len(gf) == len(wf)
		for i := 0; agree && i < len(gf); i++ {
			agree = gf[i] == wf[i]
		}
		if !agree {
			return &Violation{Step: step, Epoch: snap.Epoch(), Kind: "equivalence",
				Detail: fmt.Sprintf("shard %d failed-set %v, reference %v", s, gf, wf)}
		}
	}
	n := ck.g.Order()
	for s := 0; s < n; s++ {
		src := graph.NodeID(s)
		snap := v.Snap(src)
		vio := func(format string, args ...interface{}) *Violation {
			return &Violation{Step: step, Epoch: snap.Epoch(), Kind: "equivalence",
				Detail: fmt.Sprintf(format, args...)}
		}
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			dst := graph.NodeID(d)
			a, b := snap.Route(src, dst), want.Route(src, dst)
			if (a == nil) != (b == nil) {
				return vio("pair %d->%d routable %v, reference %v (failed %v)", s, d, a != nil, b != nil, wf)
			}
			if a == nil {
				continue
			}
			if math.Float64bits(a.Cost) != math.Float64bits(b.Cost) {
				return vio("pair %d->%d cost %v, reference %v (failed %v)", s, d, a.Cost, b.Cost, wf)
			}
			if len(a.LSPs) != len(b.LSPs) {
				return vio("pair %d->%d has %d components, reference %d", s, d, len(a.LSPs), len(b.LSPs))
			}
			for i := range a.LSPs {
				if !a.LSPs[i].Path.Equal(b.LSPs[i].Path) {
					return vio("pair %d->%d component %d path %v, reference %v", s, d, i, a.LSPs[i].Path, b.LSPs[i].Path)
				}
			}
		}
	}
	for k := 0; k < 8; k++ {
		src := graph.NodeID((step*5 + k*3) % n)
		dst := graph.NodeID((step*7 + k*11 + 1) % n)
		da, db := v.Snap(src).Oracle().Dist(src, dst), want.Oracle().Dist(src, dst)
		if math.Float64bits(da) != math.Float64bits(db) {
			return &Violation{Step: step, Epoch: v.Snap(src).Epoch(), Kind: "equivalence",
				Detail: fmt.Sprintf("dist %d->%d = %v, reference %v (failed %v)", src, dst, da, db, wf)}
		}
	}
	return nil
}

// checkFlush validates the snapshot after a flush barrier: oracle (d),
// second half. Every event sent before the flush is reflected, so the
// snapshot's failed-set must equal the reference model exactly. sh keys
// the epoch sequence as in checkResult.
func (ck *checker) checkFlush(step, sh int, snap *engine.Snapshot, model map[graph.EdgeID]bool) *Violation {
	if snap.Epoch() < ck.lastEpoch[sh] {
		return &Violation{Step: step, Epoch: snap.Epoch(), Kind: "monotonicity",
			Detail: fmt.Sprintf("flushed epoch %d after epoch %d", snap.Epoch(), ck.lastEpoch[sh])}
	}
	ck.lastEpoch[sh] = snap.Epoch()

	failed := snap.Failed()
	agree := len(failed) == len(model)
	if agree {
		for _, e := range failed {
			if !model[e] {
				agree = false
				break
			}
		}
	}
	if !agree {
		want := make([]graph.EdgeID, 0, len(model))
		for e := range model {
			want = append(want, e)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		return &Violation{Step: step, Epoch: snap.Epoch(), Kind: "flush-agreement",
			Detail: fmt.Sprintf("snapshot failed-set %v, event stream says %v", failed, want)}
	}
	return nil
}
