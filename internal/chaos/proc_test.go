package chaos

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"rbpc/internal/engine"
	"rbpc/internal/shardrpc"
)

func procCfg() Config {
	cfg := smokeCfg()
	cfg.Shards = 3
	cfg.Procs = true
	return cfg
}

// TestProcLockstepEquivalence: the process-mode coordinator — real wire
// frames over pipe transports, decoded replica snapshots — survives the
// chaos schedules with every oracle green: per-worker flush agreement,
// per-worker epoch monotonicity on the wire answers, and bit-identical
// merged replica views against the single-writer FullRebuild reference.
func TestProcLockstepEquivalence(t *testing.T) {
	c, v, err := Hunt(procCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("process-mode coordinator violated an oracle:\n%v\nschedule:\n%s", v, c.Schedule)
	}
}

// TestHarnessCatchesEveryProcFault: the transport harness's own
// conformance proof — every injectable wire fault is caught, the shrunk
// counterexample replays deterministically, and the corpus encoding
// round-trips to an equally-failing process-mode case.
func TestHarnessCatchesEveryProcFault(t *testing.T) {
	for _, f := range shardrpc.Faults() {
		f := f
		t.Run(f.String(), func(t *testing.T) {
			cfg := procCfg()
			cfg.ProcFault = f
			c, v, err := Hunt(cfg, 4)
			if err != nil {
				t.Fatal(err)
			}
			if v == nil {
				t.Fatalf("harness did not catch injected transport fault %v within budget", f)
			}
			t.Logf("caught %v as %s (shrunk to %d steps)", f, v.Kind, len(c.Schedule))

			for i := 0; i < 2; i++ {
				_, err := c.Run()
				var rv *Violation
				if !errors.As(err, &rv) {
					t.Fatalf("replay %d of shrunk case did not fail: %v", i, err)
				}
				if rv.Kind != v.Kind || rv.Step != v.Step {
					t.Fatalf("replay %d diverged: got %v, want %v", i, rv, v)
				}
			}

			var buf bytes.Buffer
			if err := WriteCase(&buf, c); err != nil {
				t.Fatal(err)
			}
			rc, err := ReadCase(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadCase: %v\ncorpus:\n%s", err, buf.String())
			}
			if !reflect.DeepEqual(rc, c) {
				t.Fatalf("corpus round-trip changed the case:\ngot  %+v\nwant %+v", rc, c)
			}
			_, err = rc.Run()
			var rv *Violation
			if !errors.As(err, &rv) || rv.Kind != v.Kind {
				t.Fatalf("decoded case does not reproduce: %v", err)
			}
		})
	}
}

// TestProcEngineFaultsStillCaught: an engine-level defect inside a
// worker process is still caught through the wire — the decoded replica
// snapshots and wire answers carry enough state for the oracles even
// though no engine memory is shared.
func TestProcEngineFaultsStillCaught(t *testing.T) {
	cfg := procCfg()
	cfg.Fault = engine.FaultDropEpoch
	_, v, err := Hunt(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("drop-epoch inside a worker not caught through the transport")
	}
}

// TestProcTraceDeterministic: process-mode runs replay byte-identically
// too — the pipe transport adds no scheduling visible to the oracles.
func TestProcTraceDeterministic(t *testing.T) {
	c, err := Generate(procCfg())
	if err != nil {
		t.Fatal(err)
	}
	r1, err1 := c.Run()
	r2, err2 := c.Run()
	if err1 != nil || err2 != nil {
		t.Fatalf("clean process-mode case failed: %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(r1.Trace, r2.Trace) {
		t.Fatal("two process-mode runs produced different event traces")
	}
}

// TestProcCorpusKeys: process-mode cases survive the corpus format, and
// in-process sharded files stay byte-identical to the pre-transport
// format (no procs keys written).
func TestProcCorpusKeys(t *testing.T) {
	c, err := Generate(procCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCase(&buf, c); err != nil {
		t.Fatal(err)
	}
	rc, err := ReadCase(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadCase: %v\ncorpus:\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(rc, c) {
		t.Fatalf("corpus round-trip changed the case:\ngot  %+v\nwant %+v", rc, c)
	}

	sc, err := Generate(shardedCfg())
	if err != nil {
		t.Fatal(err)
	}
	var sb bytes.Buffer
	if err := WriteCase(&sb, sc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"procs", "proc-fault"} {
		if bytes.Contains(sb.Bytes(), []byte(key)) {
			t.Fatalf("in-process sharded corpus carries %q key:\n%s", key, sb.String())
		}
	}
}
