package rbpc

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (Tables 1-3, Figure 10) and measures the ablations called
// out in DESIGN.md. Each Benchmark* function both times the computation
// and reports the experiment's headline numbers via b.ReportMetric, so a
// single `go test -bench=. -benchmem` run reproduces the paper's shapes.
//
// Topologies default to CI-friendly scales; set RBPC_FULL=1 for the
// paper's full sizes.

import (
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"

	"rbpc/internal/eval"
	"rbpc/internal/failure"
	"rbpc/internal/spath"
	"rbpc/internal/topology"
)

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

var (
	benchNetsOnce sync.Once
	benchNets     []EvalNetwork
)

func benchNetworks() []EvalNetwork {
	benchNetsOnce.Do(func() {
		benchNets = EvalNetworks(EvalScaleFromEnv())
	})
	return benchNets
}

// BenchmarkTable1 regenerates the topology-statistics table.
func BenchmarkTable1(b *testing.B) {
	nets := benchNetworks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := eval.Table1(nets)
		if len(rows) == 0 {
			b.Fatal("empty table")
		}
	}
	for _, r := range eval.Table1(nets) {
		b.ReportMetric(r.AvgDegree, "avgdeg:"+shortName(r.Name))
	}
}

// BenchmarkTable2 regenerates every block of Table 2: restoration quality
// under the four failure classes on the four networks. The headline
// shapes from the paper: avg PC length ~2, ILM stretch far below 100%.
func BenchmarkTable2(b *testing.B) {
	kinds := []struct {
		name string
		kind FailureKind
	}{
		{"OneLink", SingleLink},
		{"TwoLinks", DoubleLink},
		{"OneRouter", SingleRouter},
		{"TwoRouters", DoubleRouter},
	}
	for _, k := range kinds {
		for _, net := range benchNetworks() {
			net := net
			b.Run(k.name+"/"+shortName(net.Name), func(b *testing.B) {
				var row eval.Table2Row
				for i := 0; i < b.N; i++ {
					row = RunTable2Row(net, k.kind, int64(i)+1)
				}
				b.ReportMetric(row.AvgPC, "PCavg")
				b.ReportMetric(row.LengthSF, "lenSF")
				b.ReportMetric(100*row.AvgILMSF, "ILMsf%")
				b.ReportMetric(100*row.Redundancy, "redun%")
			})
		}
	}
}

// BenchmarkTable3 regenerates the bypass-length distribution. Paper
// shape: the bulk of bypasses take 2-3 hops.
func BenchmarkTable3(b *testing.B) {
	for _, net := range benchNetworks() {
		net := net
		b.Run(shortName(net.Name), func(b *testing.B) {
			var res eval.Table3Result
			for i := 0; i < b.N; i++ {
				res = eval.Table3(net, 5000, 1)
			}
			var short float64
			for _, r := range res.Rows {
				if r.Hopcount <= 3 {
					short += r.Percent
				}
			}
			b.ReportMetric(short, "bypass<=3hops%")
		})
	}
}

// BenchmarkFigure10 regenerates the local-RBPC stretch histograms on the
// weighted ISP. Paper shape: the vast majority of local restorations cost
// about as much as the source-routed optimum.
func BenchmarkFigure10(b *testing.B) {
	net := benchNetworks()[0] // ISP, Weighted
	var res eval.Figure10Result
	for i := 0; i < b.N; i++ {
		res = eval.Figure10(net, int64(i)+1)
	}
	b.ReportMetric(res.CostEndRoute.Percent(1)+res.CostEndRoute.Percent(2), "endroute~opt%")
	b.ReportMetric(res.CostEdgeBypass.Percent(1)+res.CostEdgeBypass.Percent(2), "bypass~opt%")
}

// BenchmarkTheoremScaling measures the exact decomposition machinery on
// the Figure-2 comb as k grows (Theorem 1 tightness at scale).
func BenchmarkTheoremScaling(b *testing.B) {
	for _, k := range []int{1, 4, 16, 64} {
		k := k
		b.Run(benchName("k", k), func(b *testing.B) {
			gd := topology.Comb(k)
			fv := Fail(gd.G, gd.FailedEdges, nil)
			base := AllShortestPaths(gd.G)
			b.ResetTimer()
			var dec Decomposition
			for i := 0; i < b.N; i++ {
				backup, ok := ShortestPath(fv, gd.S, gd.T)
				if !ok {
					b.Fatal("comb disconnected")
				}
				dec = DecomposeGreedy(base, backup)
			}
			if dec.Len() != k+1 {
				b.Fatalf("components = %d, want %d", dec.Len(), k+1)
			}
		})
	}
}

// BenchmarkAblationDecompose compares the two decomposition strategies
// (DESIGN.md ablation 1): greedy largest-prefix vs Dijkstra on the
// base-path graph, same single-failure workload.
func BenchmarkAblationDecompose(b *testing.B) {
	g := topology.PaperISP(1)
	e := g.Edges()[0].ID
	fv := FailEdges(g, e)
	s, d := g.Edge(e).U, g.Edge(e).V

	b.Run("greedy", func(b *testing.B) {
		base := AllShortestPaths(g)
		r := NewRestorer(base, StrategyGreedy)
		var plan Plan
		var err error
		for i := 0; i < b.N; i++ {
			plan, err = r.Restore(fv, s, d)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(plan.PCLength()), "components")
	})
	b.Run("sparse", func(b *testing.B) {
		base := OneShortestPathPerPair(g)
		r := NewRestorer(base, StrategySparse)
		var plan Plan
		var err error
		for i := 0; i < b.N; i++ {
			plan, err = r.Restore(fv, s, d)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(plan.PCLength()), "components")
	})
}

// BenchmarkAblationTieBreak compares base-set selection policies
// (DESIGN.md ablation 2): arbitrary canonical trees vs padded-unique
// selection, measured by average components over sampled failures.
func BenchmarkAblationTieBreak(b *testing.B) {
	g := topology.PaperISP(2)
	oracle := spath.NewOracle(g)
	scens := failure.Sample(g, oracle, failure.SingleLink, 40, newRand(3))

	run := func(b *testing.B, base BaseSet) {
		var total, count int
		for i := 0; i < b.N; i++ {
			total, count = 0, 0
			for _, sc := range scens {
				fv := sc.View(g)
				dec, ok := DecomposeSparse(base, fv, sc.Src, sc.Dst)
				if !ok {
					continue
				}
				total += dec.Len()
				count++
			}
		}
		if count > 0 {
			b.ReportMetric(float64(total)/float64(count), "PCavg")
		}
	}
	b.Run("canonical", func(b *testing.B) { run(b, AllShortestPaths(g)) })
	b.Run("padded-unique", func(b *testing.B) { run(b, OneShortestPathPerPair(g)) })
}

// BenchmarkAblationOracle compares the memoized distance oracle against
// recomputing SSSP per query (DESIGN.md ablation 3).
func BenchmarkAblationOracle(b *testing.B) {
	g := topology.PaperAS(1, 0.05)
	queries := make([][2]NodeID, 64)
	rng := newRand(9)
	for i := range queries {
		queries[i] = [2]NodeID{NodeID(rng.Intn(g.Order())), NodeID(rng.Intn(g.Order()))}
	}
	b.Run("memoized", func(b *testing.B) {
		o := NewOracle(g)
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			o.Dist(q[0], q[1])
		}
	})
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q := queries[i%len(queries)]
			if _, ok := ShortestPath(g, q[0], q[1]); !ok {
				b.Fatal("unreachable")
			}
		}
	})
}

// BenchmarkAblationProvisioning quantifies ILM cost of the provisioning
// policies (DESIGN.md ablation 5): RBPC's base set vs explicitly
// pre-provisioning one backup LSP per (pair, failure) case — Table 2's
// ILM stretch, reported as raw entry counts.
func BenchmarkAblationProvisioning(b *testing.B) {
	net := benchNetworks()[0]
	var row eval.Table2Row
	for i := 0; i < b.N; i++ {
		row = RunTable2Row(net, SingleLink, 1)
	}
	b.ReportMetric(100*row.MinILMSF, "minILM%")
	b.ReportMetric(100*row.AvgILMSF, "avgILM%")
}

// BenchmarkAblationKBackup compares RBPC against the classic k-backup
// baseline (pre-established alternates, reference [7]-style) on sampled
// single- and double-link failures: coverage (RBPC is always 100% of
// connected pairs), path-quality stretch, and pre-provisioned ILM state.
func BenchmarkAblationKBackup(b *testing.B) {
	net := eval.Network{Name: "ISPw", G: topology.PaperISP(4), Trials: 60}
	for _, k := range []int{2, 3} {
		for _, kindCase := range []struct {
			name string
			kind FailureKind
		}{{"OneLink", SingleLink}, {"TwoLinks", DoubleLink}} {
			k, kindCase := k, kindCase
			b.Run(benchName("k", k)+"/"+kindCase.name, func(b *testing.B) {
				var res eval.KBackupComparison
				for i := 0; i < b.N; i++ {
					res = eval.CompareKBackup(net, k, kindCase.kind, int64(i)+1)
				}
				b.ReportMetric(res.CoveragePct(), "coverage%")
				b.ReportMetric(res.KBackupAvgStretch, "stretch")
				if res.RBPCILM > 0 {
					b.ReportMetric(float64(res.KBackupILM)/float64(res.RBPCILM), "ILMx")
				}
			})
		}
	}
}

// BenchmarkAblationMerging quantifies label merging (the paper's
// Section-2 ILM note): total ILM entries for all-destination coverage
// with merged per-destination trees vs point-to-point all-pairs LSPs.
func BenchmarkAblationMerging(b *testing.B) {
	g := topology.ISP(topology.ISPConfig{
		Core: 6, Agg: 12, Access: 22,
		CoreOffsets: []int{1, 2}, AggLateral: 3, DualAccess: 14,
		WCore: 1, WAgg: 3, WAccess: 10,
	}, 1)

	b.Run("merged", func(b *testing.B) {
		var total int
		for i := 0; i < b.N; i++ {
			net := NewMPLSNetwork(g)
			for d := 0; d < g.Order(); d++ {
				if _, err := InstallMergedTree(net, NodeID(d), NextHopsToward(g, NodeID(d))); err != nil {
					b.Fatal(err)
				}
			}
			total, _ = net.TotalILM()
		}
		b.ReportMetric(float64(total), "ILMentries")
	})
	b.Run("point-to-point", func(b *testing.B) {
		o := NewOracle(g)
		var total int
		for i := 0; i < b.N; i++ {
			net := NewMPLSNetwork(g)
			for s := 0; s < g.Order(); s++ {
				for d := 0; d < g.Order(); d++ {
					if s == d {
						continue
					}
					p, ok := o.Path(NodeID(s), NodeID(d))
					if !ok {
						continue
					}
					if _, err := net.EstablishLSP(p); err != nil {
						b.Fatal(err)
					}
				}
			}
			total, _ = net.TotalILM()
		}
		b.ReportMetric(float64(total), "ILMentries")
	})
}

// BenchmarkForwarding measures the packet forwarder over a provisioned
// deployment with an active restoration (stacked labels on the path).
func BenchmarkForwarding(b *testing.B) {
	g := topology.Ring(32)
	dep, err := NewDeployment(g, DefaultDeployConfig())
	if err != nil {
		b.Fatal(err)
	}
	e, _ := g.FindEdge(0, 1)
	dep.FailLink(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dep.Net().SendIP(0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProvisionDeployment measures full RBPC pre-provisioning
// (canonical LSPs + subpath closure + edge LSPs + FEC population).
func BenchmarkProvisionDeployment(b *testing.B) {
	g := topology.ISP(topology.ISPConfig{
		Core: 6, Agg: 12, Access: 22,
		CoreOffsets: []int{1, 2}, AggLateral: 3, DualAccess: 14,
		WCore: 1, WAgg: 3, WAccess: 10,
	}, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewDeployment(g, DefaultDeployConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSourceRestoration measures the end-to-end source-router RBPC
// reaction to a failure: online (recompute at failure time) vs
// precomputed plans (the paper's "fastest if pre-computed and indexed by
// the specific link failure").
func BenchmarkSourceRestoration(b *testing.B) {
	g := topology.Waxman(24, 0.7, 0.4, 5)
	e := g.Edges()[0].ID

	b.Run("online", func(b *testing.B) {
		dep, err := NewDeployment(g, DefaultDeployConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dep.FailLink(e)
			dep.RepairLink(e)
		}
	})
	b.Run("precomputed", func(b *testing.B) {
		dep, err := NewDeployment(g, DefaultDeployConfig())
		if err != nil {
			b.Fatal(err)
		}
		dep.PrecomputeFailoverPlans()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dep.FailLinkPrecomputed(e)
			dep.RepairLink(e)
		}
	})
}

func shortName(name string) string {
	switch name {
	case "ISP, Weighted":
		return "ISPw"
	case "ISP, Unweighted":
		return "ISPu"
	case "AS Graph":
		return "AS"
	default:
		return strings.ReplaceAll(name, " ", "")
	}
}

func benchName(prefix string, k int) string {
	return prefix + "=" + strconv.Itoa(k)
}
