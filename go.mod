module rbpc

go 1.22
