package rbpc

// Facade tests: the public API end to end, the way README snippets use it.

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestFacadeTheoremWorkflow(t *testing.T) {
	g := NewRing(6)
	g.AddEdge(1, 4, 1)
	base := AllShortestPaths(g)
	e, _ := g.FindEdge(0, 1)
	fv := FailEdges(g, e)

	r := NewRestorer(base, StrategyGreedy)
	plan, err := r.Restore(fv, 0, 2)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if plan.PCLength() > 2 {
		t.Errorf("PC length %d > 2 for single failure on unweighted graph", plan.PCLength())
	}
	if plan.Backup.HasEdge(e) {
		t.Error("backup uses failed edge")
	}
}

func TestFacadeDisconnected(t *testing.T) {
	g := NewLine(3)
	e, _ := g.FindEdge(0, 1)
	r := NewRestorer(AllShortestPaths(g), StrategyGreedy)
	_, err := r.Restore(FailEdges(g, e), 0, 2)
	if !errors.Is(err, ErrDisconnected) {
		t.Errorf("err = %v, want ErrDisconnected", err)
	}
}

func TestFacadeDeploymentLifecycle(t *testing.T) {
	g := NewComplete(5)
	dep, err := NewDeployment(g, DefaultDeployConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, _ := g.FindEdge(0, 1)
	dep.FailLink(e)
	pkt, err := dep.Net().SendIP(0, 1)
	if err != nil || pkt.At != 1 {
		t.Fatalf("SendIP after failure: %v", err)
	}
	dep.RepairLink(e)
	pkt, err = dep.Net().SendIP(0, 1)
	if err != nil || pkt.Hops != 1 {
		t.Fatalf("after repair: err=%v hops=%d", err, pkt.Hops)
	}
}

func TestFacadeHybrid(t *testing.T) {
	g := NewRing(6)
	dep, err := NewDeployment(g, DefaultDeployConfig())
	if err != nil {
		t.Fatal(err)
	}
	var eng Engine
	proto := NewLinkState(g, &eng, DefaultLinkStateConfig())
	hyb := NewHybridDeployment(dep, proto, &eng, EdgeBypass)
	e, _ := g.FindEdge(0, 1)
	if err := hyb.FailLink(e); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if _, ok := hyb.LocalPatchedAt[e]; !ok {
		t.Error("no local patch recorded")
	}
	if _, err := dep.Net().SendIP(0, 1); err != nil {
		t.Errorf("undeliverable after convergence: %v", err)
	}
}

func TestFacadeBaseline(t *testing.T) {
	g := NewRing(5)
	var eng Engine
	bal, err := NewBaseline(g, &eng, DefaultSignalingConfig())
	if err != nil {
		t.Fatal(err)
	}
	bal.NotifyDelay = 10
	e, _ := g.FindEdge(0, 1)
	bal.FailLink(e)
	eng.Run()
	if bal.Signaling().Total() == 0 {
		t.Error("baseline signaled nothing")
	}
	if _, err := bal.Net().SendIP(0, 1); err != nil {
		t.Errorf("baseline undeliverable after signaling: %v", err)
	}
}

func TestFacadeExperiments(t *testing.T) {
	nets := []EvalNetwork{
		{Name: "ISP, Weighted", G: NewISPTopology(1), Trials: 10},
		{Name: "ring", G: NewRing(10), Trials: 10},
	}
	var buf bytes.Buffer
	RunTable1(&buf, nets)
	if !strings.Contains(buf.String(), "nodes") {
		t.Error("Table1 render")
	}
	row := RunTable2Row(nets[1], SingleLink, 1)
	if row.Scenarios == 0 {
		t.Error("Table2 empty")
	}
	buf.Reset()
	if res := RunTable3(&buf, nets, 100, 1); len(res) != 2 {
		t.Error("Table3 results")
	}
	buf.Reset()
	if res := RunFigure10(&buf, nets[0], 1); res.Scenarios == 0 {
		t.Error("Figure10 empty")
	}
}

func TestFacadeTopologies(t *testing.T) {
	for name, g := range map[string]*Graph{
		"isp":      NewISPTopology(1),
		"as":       NewASTopology(1, 0.02),
		"internet": NewInternetTopology(1, 0.003),
		"waxman":   NewWaxman(30, 0.5, 0.4, 1),
		"powerlaw": NewPowerLaw(50, 2, 1),
		"grid":     NewGrid(4, 4),
	} {
		if !Connected(g) {
			t.Errorf("%s disconnected", name)
		}
	}
	u := UnweightedCopy(NewISPTopology(1))
	if !u.UnitWeights() {
		t.Error("UnweightedCopy kept weights")
	}
}

func TestFacadeTrafficClasses(t *testing.T) {
	g := NewRing(6)
	g.AddEdge(0, 3, 5)
	classes := NewTrafficClasses(g)
	if _, err := classes.AddClass("fast", func(e Edge) bool { return e.W == 1 }, StrategyGreedy); err != nil {
		t.Fatal(err)
	}
	p, ok := classes.Route("fast", 0, 3)
	if !ok || p.Hops() != 3 {
		t.Fatalf("route = %v, %v", p, ok)
	}
	plan, err := classes.Restore("fast", []EdgeID{p.Edges[0]}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range plan.Backup.Edges {
		if g.Edge(e).W != 1 {
			t.Error("class restoration left its subnet")
		}
	}
	sub := ExtractSubnet(g, "fast", func(e Edge) bool { return e.W == 1 })
	if sub.G.Size() != 6 {
		t.Errorf("subnet size %d", sub.G.Size())
	}
}

func TestFacadeMergedTrees(t *testing.T) {
	g := NewRing(6)
	net := NewMPLSNetwork(g)
	tree, err := InstallMergedTree(net, 0, NextHopsToward(g, 0))
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := net.SendMerged(3, tree)
	if err != nil || pkt.At != 0 {
		t.Fatalf("merged forward: %v", err)
	}
	if tree.Size() != 6 {
		t.Errorf("tree size %d", tree.Size())
	}
}

func TestFacadeScenarioAndTrace(t *testing.T) {
	g := NewComplete(4)
	dep, err := NewDeployment(g, DefaultDeployConfig())
	if err != nil {
		t.Fatal(err)
	}
	var eng Engine
	proto := NewLinkState(g, &eng, DefaultLinkStateConfig())
	hyb := NewHybridDeployment(dep, proto, &eng, EdgeBypass)

	ops, err := ParseScenario(strings.NewReader("at 0 fail-link 0\nat 20 probe 0 1\nat 20 audit\n"))
	if err != nil {
		t.Fatal(err)
	}
	log, err := RunScenario(hyb, &eng, ops)
	if err != nil || len(log) != 3 {
		t.Fatalf("scenario: %v, %d events", err, len(log))
	}
	res := TraceRoute(dep.Net(), 0, 1)
	if !res.Delivered {
		t.Fatalf("trace: %s", res.Reason)
	}
	var sb strings.Builder
	WriteTrace(&sb, dep.Net(), res)
	if !strings.Contains(sb.String(), "DELIVERED") {
		t.Error("trace render")
	}
}

func TestFacadeEvalScalesAndRuns(t *testing.T) {
	if DefaultEvalScale().ASScale >= FullEvalScale().ASScale {
		t.Error("scales inverted")
	}
	t.Setenv("RBPC_FULL", "")
	if EvalScaleFromEnv() != DefaultEvalScale() {
		t.Error("env scale")
	}
	nets := EvalNetworks(EvalScale{Seed: 1, ASScale: 0.02, InternetScale: 0.003})
	if len(nets) != 4 {
		t.Fatalf("networks = %d", len(nets))
	}
	// Shrink trials so the full Table2 run stays fast.
	for i := range nets {
		nets[i].Trials = 4
	}
	var buf bytes.Buffer
	rows := RunTable2(&buf, nets, 1)
	if len(rows) != 16 || !strings.Contains(buf.String(), "avg PC") {
		t.Errorf("RunTable2: %d rows", len(rows))
	}
	buf.Reset()
	if rows := RunAsymmetry(&buf, nets[0], []int{0, 2}, 1); len(rows) != 2 {
		t.Error("RunAsymmetry rows")
	}
	buf.Reset()
	if rows := RunKBackupComparison(&buf, nets[0], []int{2}, 1); len(rows) != 2 {
		t.Error("RunKBackupComparison rows")
	}
}

func TestFacadeFailViews(t *testing.T) {
	g := NewRing(5)
	fv := FailNodes(g, 2)
	if fv.NodeUsable(2) {
		t.Error("FailNodes")
	}
	fv2 := Fail(g, []EdgeID{0}, []NodeID{3})
	if fv2.EdgeUsable(0) || fv2.NodeUsable(3) {
		t.Error("Fail")
	}
}

func TestFacadeBaseSets(t *testing.T) {
	g := NewRing(4)
	all := AllShortestPaths(g)
	one := OneShortestPathPerPair(g)
	p02a, _ := all.Between(0, 2)
	p02b, _ := one.Between(0, 2)
	if !all.Contains(p02a) || !one.Contains(p02b) {
		t.Error("base sets don't contain their own canonical paths")
	}
	ex := NewExplicitBase(g)
	if ex.Add(p02a); !ex.Contains(p02a) {
		t.Error("explicit base broken")
	}
	if dec, ok := DecomposeSparse(one, FailEdges(g), 0, 2); !ok || dec.Len() != 1 {
		t.Errorf("sparse on unfailed graph: %v", dec)
	}
}
