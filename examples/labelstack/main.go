// Labelstack: a packet's-eye view of restoration by path concatenation.
// Shows the raw MPLS mechanics the paper builds on: per-router label
// spaces, ILM rows, and the stack operations that splice two LSPs into
// one forwarding path without touching any transit router.
package main

import (
	"fmt"

	"rbpc"
	"rbpc/internal/graph"
	"rbpc/internal/mpls"
)

func main() {
	// Two triangles sharing router 2:
	//
	//   0 --- 1        4
	//    \   /        / \
	//      2 ------- 3---5       LSP A: 0-1-2,  LSP B: 2-3-4
	g := rbpc.NewGraph(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(3, 5, 1)
	g.AddEdge(4, 5, 1)

	net := rbpc.NewMPLSNetwork(g)
	lspA, err := net.EstablishLSP(pathOf(g, 0, 1, 2))
	if err != nil {
		panic(err)
	}
	lspB, err := net.EstablishLSP(pathOf(g, 2, 3, 4))
	if err != nil {
		panic(err)
	}

	fmt.Println("LSP A:", lspA.Path, " self-label", lspA.SelfLabel(), " first-hop label", lspA.FirstHopLabel())
	fmt.Println("LSP B:", lspB.Path, " self-label", lspB.SelfLabel(), " first-hop label", lspB.FirstHopLabel())

	fmt.Println("\nILM tables after provisioning:")
	for r := rbpc.NodeID(0); r < 6; r++ {
		fmt.Printf("  router %d: %d entries\n", r, net.Router(r).ILMSize())
	}

	// Concatenate A and B with the stack: the source pushes B's
	// self-label underneath A's first-hop label. When A's egress (router
	// 2) pops, B's self-label surfaces and router 2's own ILM row sends
	// the packet down B. No router between 0 and 4 changed any state.
	stack, firstEdge, err := mpls.ConcatStack([]*rbpc.LSP{lspA, lspB})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nconcatenation stack pushed at source (bottom->top): %v, first link %d\n", stack, firstEdge)

	pkt, err := net.SendOnLSPs(4, []*rbpc.LSP{lspA, lspB})
	if err != nil {
		panic(err)
	}
	fmt.Printf("packet rode A then B: trace %v, %d hops, stack now empty: %v\n",
		pkt.Trace, pkt.Hops, len(pkt.Stack) == 0)

	// Local edge-bypass in the raw: fail link 3-4; router 3 replaces ONE
	// ILM row so LSP B detours 3-5-4 and resumes.
	e34, _ := g.FindEdge(3, 4)
	net.FailEdge(e34)
	bypass, err := net.EstablishLSP(pathOf(g, 3, 5, 4))
	if err != nil {
		panic(err)
	}
	inLabel, _ := lspB.IncomingLabelAt(3)
	resume, _ := lspB.HopLabel(1) // label B's packets would carry into 4
	_, err = net.ReplaceILM(3, inLabel, mpls.ILMEntry{
		Out:     []rbpc.Label{resume, bypass.SelfLabel()},
		OutEdge: mpls.LocalProcess,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nlink 3-4 failed; router 3 patched its row for label %d\n", inLabel)

	pkt, err = net.SendOnLSPs(4, []*rbpc.LSP{lspA, lspB})
	if err != nil {
		panic(err)
	}
	fmt.Printf("same concatenation now detours: trace %v (%d hops)\n", pkt.Trace, pkt.Hops)

	st := net.Stats()
	fmt.Printf("\nstats: %d LSPs established (%d signaling msgs), %d ILM patch, %d packets forwarded, %d dropped\n",
		st.LSPsEstablished, st.SignalingMsgs, st.ILMReplacements, st.PacketsForwarded, st.PacketsDropped)
}

// pathOf builds a path along the given nodes using the cheapest edge
// between each consecutive pair.
func pathOf(g *rbpc.Graph, nodes ...rbpc.NodeID) rbpc.Path {
	p := graph.Path{Nodes: nodes}
	for i := 0; i < len(nodes)-1; i++ {
		id, ok := g.FindEdge(nodes[i], nodes[i+1])
		if !ok {
			panic("no such edge")
		}
		p.Edges = append(p.Edges, id)
	}
	return p
}
