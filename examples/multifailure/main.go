// Multifailure: the theory section as a runnable demo. Exercises
// Theorems 1-3 on the paper's own tightness constructions (Figures 2 and
// 3) and on random graphs with k simultaneous failures, printing the
// decompositions.
package main

import (
	"fmt"

	"rbpc"
	"rbpc/internal/graph"
	"rbpc/internal/topology"
)

func main() {
	fmt.Println("=== Theorem 1 tightness (Figure 2: the comb) ===")
	for _, k := range []int{1, 2, 3} {
		gd := topology.Comb(k)
		fv := graph.Fail(gd.G, gd.FailedEdges, nil)
		base := rbpc.AllShortestPaths(gd.G)
		backup, _ := rbpc.ShortestPath(fv, gd.S, gd.T)
		dec := rbpc.DecomposeGreedy(base, backup)
		fmt.Printf("k=%d failures: backup %s\n", k, backup)
		fmt.Printf("      needs exactly %d = k+1 shortest paths: %s\n", dec.Len(), dec)
	}

	fmt.Println("\n=== Theorem 2 tightness (Figure 3: parallel pairs) ===")
	for _, k := range []int{1, 2} {
		gd := topology.WeightedTight(k)
		fv := graph.Fail(gd.G, gd.FailedEdges, nil)
		base := rbpc.AllShortestPaths(gd.G)
		backup, _ := rbpc.ShortestPath(fv, gd.S, gd.T)
		dec := rbpc.DecomposeGreedy(base, backup)
		fmt.Printf("k=%d failures: %d shortest paths + %d bare edges: %s\n",
			k, dec.NumPaths(), dec.NumEdges(), dec)
	}

	fmt.Println("\n=== Theorem 3: one shortest path per pair suffices ===")
	g := rbpc.NewWaxman(14, 0.7, 0.4, 3)
	unique := rbpc.OneShortestPathPerPair(g)
	k := 2
	failed := []rbpc.EdgeID{0, 5}
	fv := rbpc.FailEdges(g, failed...)
	restorer := rbpc.NewRestorer(unique, rbpc.StrategySparse)
	shown := 0
	for d := 1; d < g.Order() && shown < 4; d++ {
		plan, err := restorer.Restore(fv, 0, rbpc.NodeID(d))
		if err != nil {
			continue
		}
		if plan.PCLength() < 2 {
			continue // undamaged pair, boring
		}
		fmt.Printf("restore 0->%d after %d failures: %d components (bound %d): %s\n",
			d, k, plan.PCLength(), 2*k+1, plan.Decomp)
		shown++
	}

	fmt.Println("\n=== Node failure pathology (Figure 4: the hub) ===")
	gd, hub := topology.StarOfPairs(8)
	fvn := graph.FailNodes(gd.G, hub)
	base := rbpc.AllShortestPaths(gd.G)
	backup, _ := rbpc.ShortestPath(fvn, gd.S, gd.T)
	dec := rbpc.DecomposeGreedy(base, backup)
	fmt.Printf("hub failure forces %d components for one router failure (n=%d)\n",
		dec.Len(), gd.G.Order())

	fmt.Println("\n=== Multi-failure restoration on the MPLS plane ===")
	mesh := rbpc.NewComplete(6)
	dep, err := rbpc.NewDeployment(mesh, rbpc.DefaultDeployConfig())
	if err != nil {
		panic(err)
	}
	e1, _ := mesh.FindEdge(0, 1)
	e2, _ := mesh.FindEdge(0, 2)
	e3, _ := mesh.FindEdge(1, 2)
	for i, e := range []rbpc.EdgeID{e1, e2, e3} {
		dep.FailLink(e)
		pkt, err := dep.Net().SendIP(0, 1)
		if err != nil {
			panic(err)
		}
		fmt.Printf("after %d failure(s): 0->1 delivered via %v, %d LSPs concatenated, 0 signaling msgs\n",
			i+1, pkt.Trace, len(dep.RouteOf(0, 1)))
	}
}
