// Growth: RBPC as "a flexible set of routes that can withstand
// topological changes", in the other direction — a new link comes into
// service. The base set extends in place (no teardown anywhere),
// improved pairs move to better primaries, and the new link immediately
// participates in restoration. A scripted audit proves the tables stay
// sound at every step.
package main

import (
	"fmt"
	"os"

	"rbpc"
)

func main() {
	// A sparse ring: every route is long, restoration is fragile.
	g := rbpc.NewRing(8)
	dep, err := rbpc.NewDeployment(g, rbpc.DefaultDeployConfig())
	if err != nil {
		panic(err)
	}

	show := func(src, dst rbpc.NodeID, label string) {
		pkt, err := dep.Net().SendIP(src, dst)
		if err != nil {
			fmt.Printf("  %d->%d: DROPPED (%v) — %s\n", src, dst, err, label)
			return
		}
		fmt.Printf("  %d->%d: %d hops via %v — %s\n", src, dst, pkt.Hops, pkt.Trace, label)
	}

	fmt.Println("before growth (8-ring):")
	show(0, 4, "antipodal pair, 4 hops around")
	lsps := dep.Net().NumLSPs()

	fmt.Println("\ncommissioning a chord 0-4...")
	chord, err := dep.AddLink(0, 4, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  +%d LSPs provisioned incrementally (none torn down)\n", dep.Net().NumLSPs()-lsps)
	show(0, 4, "now direct")
	show(1, 4, "improved via the chord")
	show(1, 2, "untouched")

	// The new link is restorable like any other...
	fmt.Println("\nfailing the new chord:")
	dep.FailLink(chord)
	show(0, 4, "restored around the ring")
	dep.RepairLink(chord)

	// ...and participates in restoring OLD links.
	fmt.Println("\nfailing an original ring link (3-4):")
	e34, _ := g.FindEdge(3, 4)
	dep.FailLink(e34)
	show(3, 4, "restored over the chord")

	// Audit: the whole table state is sound after growth + failure.
	rep := rbpc.VerifyTables(dep.Net())
	fmt.Printf("\ntable audit: %v\n", rep)
	if !rep.Clean() {
		fmt.Println("AUDIT FAILED")
		os.Exit(1)
	}
}
