// ISP failover: the paper's motivating scenario on a hierarchical ISP
// backbone. A core link dies; we watch the three restoration strategies
// race on the event simulator:
//
//  1. local edge-bypass RBPC at the adjacent router (fastest, possibly
//     longer paths),
//  2. source-router RBPC as the link-state flood reaches each source
//     (optimal paths, no signaling),
//  3. the conventional baseline that tears down and re-signals every
//     affected LSP via LDP (optimal paths, heavy signaling, slowest).
package main

import (
	"fmt"
	"sort"

	"rbpc"
	"rbpc/internal/topology"
)

func main() {
	// A small ISP: 6 core, 12 aggregation, 22 access routers -- the same
	// three-tier shape as the paper's 200-node snapshot, scaled to keep
	// full pre-provisioning (every subpath an LSP) instant.
	cfg := topology.ISPConfig{
		Core: 6, Agg: 12, Access: 22,
		CoreOffsets: []int{1, 2}, AggLateral: 3, DualAccess: 16,
		WCore: 1, WAgg: 3, WAccess: 10,
	}
	g := topology.ISP(cfg, 42)
	fmt.Printf("ISP stand-in: %d routers, %d links\n", g.Order(), g.Size())

	dep, err := rbpc.NewDeployment(g, rbpc.DefaultDeployConfig())
	if err != nil {
		panic(err)
	}
	fmt.Printf("provisioned %d base LSPs (canonical shortest paths, their subpaths, and per-link LSPs)\n",
		dep.Base().Len())

	var eng rbpc.Engine
	proto := rbpc.NewLinkState(g, &eng, rbpc.DefaultLinkStateConfig())
	hyb := rbpc.NewHybridDeployment(dep, proto, &eng, rbpc.EdgeBypass)

	// Fail a core link (always bypassable in the circulant core).
	coreLink := g.Edges()[0]
	fmt.Printf("\nt=0: core link %d-%d fails\n", coreLink.U, coreLink.V)
	if err := hyb.FailLink(coreLink.ID); err != nil {
		panic(err)
	}

	// An access router whose traffic crossed the dead link.
	pairs := dep.PairsThrough(coreLink.ID)
	if len(pairs) == 0 {
		fmt.Println("no routes crossed this link; try another seed")
		return
	}
	probePair := pairs[len(pairs)/2]
	probe := func(label string) {
		pkt, err := dep.Net().SendIP(probePair.Src, probePair.Dst)
		if err != nil {
			fmt.Printf("  t=%6.2fms  probe %d->%d: DROPPED — %s\n", eng.Now(), probePair.Src, probePair.Dst, label)
			return
		}
		fmt.Printf("  t=%6.2fms  probe %d->%d: %d hops — %s\n", eng.Now(), probePair.Src, probePair.Dst, pkt.Hops, label)
	}
	probe("blackhole until detection")

	eng.RunUntil(10.2) // detection at 10ms
	probe("local edge-bypass active")

	eng.Run()
	probe("source-router RBPC, optimal")

	// Restoration timeline.
	type upd struct {
		pr rbpc.Pair
		at float64
	}
	var ups []upd
	for pr, at := range hyb.SourceUpdatedAt {
		ups = append(ups, upd{pr, float64(at)})
	}
	sort.Slice(ups, func(i, j int) bool { return ups[i].at < ups[j].at })
	srcSeen := make(map[rbpc.NodeID]bool)
	for _, u := range ups {
		srcSeen[u.pr.Src] = true
	}
	fmt.Printf("\n%d source routers re-optimized %d pairs between %.2fms and %.2fms\n",
		len(srcSeen), len(ups), ups[0].at, ups[len(ups)-1].at)

	// Compare against the conventional baseline.
	var balEng rbpc.Engine
	bal, err := rbpc.NewBaseline(g, &balEng, rbpc.DefaultSignalingConfig())
	if err != nil {
		panic(err)
	}
	bal.NotifyDelay = 10 // same detection delay
	bal.FailLink(coreLink.ID)
	balEng.Run()
	var last float64
	for _, at := range bal.RestoredAt {
		if float64(at) > last {
			last = float64(at)
		}
	}
	fmt.Printf("\ncomparison for this failure:\n")
	fmt.Printf("  %-28s %-22s %s\n", "", "traffic restored", "signaling")
	fmt.Printf("  %-28s at %6.2fms (bypass)     0 messages\n", "RBPC local + source", hyb.LocalPatchedAt[coreLink.ID])
	fmt.Printf("  %-28s at %6.2fms (last LSP)   %d LDP messages\n", "teardown + re-signal", last, bal.Signaling().Total())
}
