// Quickstart: the core RBPC idea in thirty lines. Build a network,
// provision the base set conceptually (all shortest paths), fail a link,
// and express the new shortest path as a concatenation of surviving base
// paths — Theorem 1 promises at most two after a single failure.
package main

import (
	"fmt"

	"rbpc"
)

func main() {
	// A 6-node ring with one chord:
	//
	//      0 --- 1 --- 2
	//      |      \    |
	//      5 ----- 4 - 3
	g := rbpc.NewGraph(6)
	e01 := g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	g.AddEdge(4, 5, 1)
	g.AddEdge(5, 0, 1)
	g.AddEdge(1, 4, 1) // chord

	// The base set: every shortest path of the original network.
	base := rbpc.AllShortestPaths(g)

	// The primary route 0 -> 2 is 0-1-2.
	primary, _ := rbpc.ShortestPath(g, 0, 2)
	fmt.Println("primary path 0->2:", primary)

	// Link 0-1 fails.
	fv := rbpc.FailEdges(g, e01)
	fmt.Println("\nlink 0-1 fails")

	// Restore: the new shortest path, decomposed into base paths.
	restorer := rbpc.NewRestorer(base, rbpc.StrategyGreedy)
	plan, err := restorer.Restore(fv, 0, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("backup path:   ", plan.Backup)
	fmt.Println("concatenation: ", plan.Decomp)
	fmt.Printf("PC length:      %d base paths (Theorem 1 bound for k=1: 2)\n", plan.PCLength())

	// The same via the MPLS deployment: only the FEC entry at router 0
	// changes; every ILM table in the network stays untouched.
	dep, err := rbpc.NewDeployment(g, rbpc.DefaultDeployConfig())
	if err != nil {
		panic(err)
	}
	before, _ := dep.Net().TotalILM()
	dep.FailLink(e01)
	after, _ := dep.Net().TotalILM()

	pkt, err := dep.Net().SendIP(0, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nMPLS: packet 0->2 delivered via %v in %d hops\n", pkt.Trace, pkt.Hops)
	fmt.Printf("ILM entries before/after restoration: %d/%d (unchanged)\n", before, after)
	fmt.Printf("signaling messages during restoration: 0\n")
}
