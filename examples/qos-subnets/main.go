// QoS subnets: the paper's first motivation, live. An operator maintains
// families of shortest paths over restrictions of the network — here a
// "gold" class confined to fast links and a "best-effort" class allowed
// everywhere. A link failure is restored per class, within each class's
// own subnet, by path concatenation; gold traffic never spills onto slow
// links even mid-restoration.
package main

import (
	"fmt"

	"rbpc"
)

func main() {
	// A fast ring (weight 1, think OC48) with slow chords (weight 5).
	g := rbpc.NewGraph(8)
	var fastEdges []rbpc.EdgeID
	for i := 0; i < 8; i++ {
		fastEdges = append(fastEdges, g.AddEdge(rbpc.NodeID(i), rbpc.NodeID((i+1)%8), 1))
	}
	g.AddEdge(0, 4, 5)
	g.AddEdge(2, 6, 5)
	g.AddEdge(1, 5, 5)

	classes := rbpc.NewTrafficClasses(g)
	if _, err := classes.AddClass("gold", func(e rbpc.Edge) bool { return e.W == 1 }, rbpc.StrategyGreedy); err != nil {
		panic(err)
	}
	if _, err := classes.AddClass("best-effort", func(e rbpc.Edge) bool { return true }, rbpc.StrategyGreedy); err != nil {
		panic(err)
	}

	show := func(class string, p rbpc.Path) {
		slow := 0
		for _, e := range p.Edges {
			if g.Edge(e).W > 1 {
				slow++
			}
		}
		fmt.Printf("  %-12s %-40s cost %.0f  (%d slow links)\n",
			class+":", p.String(), p.CostIn(g), slow)
	}

	fmt.Println("routes 0 -> 3 before any failure:")
	for _, class := range classes.Classes() {
		p, _ := classes.Route(class, 0, 3)
		show(class, p)
	}

	// Fail the fast link 1-2 (on both classes' routes).
	failed := fastEdges[1]
	fmt.Printf("\nlink 1-2 fails; classes affected: %v\n", classes.AffectedClasses(failed))

	fmt.Println("\nrestorations, each within its own subnet:")
	for _, class := range classes.Classes() {
		plan, err := classes.Restore(class, []rbpc.EdgeID{failed}, 0, 3)
		if err != nil {
			fmt.Printf("  %-12s unrestorable: %v\n", class+":", err)
			continue
		}
		show(class, plan.Backup)
		fmt.Printf("  %12s concatenation of %d base paths: %s\n", "", plan.PCLength(), plan.Decomp)
	}

	// The punchline: kill enough fast links and gold partitions while
	// best-effort survives on the slow chords — class isolation holds
	// even when a cross-class path exists.
	fmt.Println("\nnow links 0-1 and 3-4 fail as well:")
	multi := []rbpc.EdgeID{failed, fastEdges[0], fastEdges[3]}
	for _, class := range classes.Classes() {
		plan, err := classes.Restore(class, multi, 0, 3)
		if err != nil {
			fmt.Printf("  %-12s partitioned within its subnet (correct: no spill onto slow links)\n", class+":")
			continue
		}
		show(class, plan.Backup)
	}
}
