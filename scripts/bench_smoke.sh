#!/bin/sh
# Bench smoke: exercise the serving benchmark and the incremental
# epoch-builder churn benchmark at reduced scale, on GOMAXPROCS 1 and 4,
# plus a multi-core serving stage at GOMAXPROCS 8 — the batched-submit
# path only shows its contention behaviour with more workers than cores
# stay quiet on.
#
# Timings are reported, never gated across machines — machines differ.
# Two things fail the job beyond build errors:
#   - correctness signals: rbpc-serve -strict exits non-zero if any query
#     was dropped or answered unroutable, if churn ran but the
#     time-to-restore prober recorded nothing, or if switchover timers
#     survived the end-of-window drain;
#   - the same-machine regression gate: the churn benchmark runs twice
#     back to back and -compare-fail-pct hard-fails if stage_solve,
#     stage_assemble, or epoch_build_p99 regressed by more than 100%
#     between the two runs. Back-to-back runs on one machine sit well
#     inside that band, so a trip means a real (order-of-magnitude
#     category) regression or a nondeterministic slow path.
set -eu
cd "$(dirname "$0")/.."

out="${BENCH_SMOKE_DIR:-$(mktemp -d)}"
echo "bench smoke: writing BENCH_*.json into $out"

go build ./cmd/rbpc-serve ./cmd/rbpc-bench

for procs in 1 4; do
    echo
    echo "== GOMAXPROCS=$procs: rbpc-serve, reduced-scale AS, strict =="
    GOMAXPROCS=$procs go run ./cmd/rbpc-serve \
        -topology as -scale 0.02 -qps 20000 -duration 2s \
        -strict -bench-dir "$out"

    echo
    echo "== GOMAXPROCS=$procs: rbpc-bench -engine, reduced-scale churn =="
    GOMAXPROCS=$procs go run ./cmd/rbpc-bench \
        -engine -engine-scale 0.02 -engine-steps 12 -bench-dir "$out"
done

echo
echo "== GOMAXPROCS=8: rbpc-serve, multi-core batched submit, strict =="
GOMAXPROCS=8 go run ./cmd/rbpc-serve \
    -topology as -scale 0.02 -qps 40000 -duration 2s \
    -strict -bench-dir "$out"

echo
echo "== GOMAXPROCS=8: rbpc-serve, hybrid restoration scheme, strict =="
# Hybrid switchover end to end: bypass answers served from the instant the
# local plan publishes, source-routed plans swapped in per source as the
# modeled flood horizon passes. Strict mode additionally requires the
# time-to-restore prober to have recorded samples and every switchover
# timer to be cancelled by the end-of-window drain.
GOMAXPROCS=8 go run ./cmd/rbpc-serve \
    -topology as -scale 0.02 -qps 40000 -duration 2s \
    -scheme hybrid -flood-detect 2ms -flood-hop 100us \
    -strict -bench-dir "$out"

echo
echo "== GOMAXPROCS=8: rbpc-serve, sharded (-shards 4) with hot set + cold tier, strict =="
# The cold-tier queue must cover the window's worth of backlog when cold
# solves arrive faster than the solver pool drains them: shed happens only
# on a full admission queue, and the end-of-window Drain barrier absorbs
# whatever is still queued, so a deep queue turns transient overload into
# latency instead of strict-mode drops.
GOMAXPROCS=8 go run ./cmd/rbpc-serve \
    -topology as -scale 0.02 -qps 40000 -duration 2s \
    -shards 4 -hot-sources 40 -plan-cache-max 256 \
    -cold-queue 65536 -cold-cache 16384 -cold-promote-after 2 \
    -strict -bench-dir "$out"

echo
echo "== GOMAXPROCS=8: rbpc-serve, process mode (-shard-procs 4), strict =="
# Cross-process serving over the wire transport: the in-process -shards 4
# window runs first as the baseline, then the same window is served by
# four forked worker processes over Unix sockets. Strict mode gates both
# windows on dropped/unroutable and on the prober recording samples
# through the remote ProbeQuery path.
GOMAXPROCS=8 go run ./cmd/rbpc-serve \
    -topology as -scale 0.02 -qps 40000 -duration 2s \
    -shard-procs 4 -plan-cache-max 256 \
    -strict -bench-dir "$out"

echo
echo "== regression gate: same-machine churn double-run, -compare-fail-pct 100 =="
baseline="$out/baseline"
mkdir -p "$baseline"
cp "$out/BENCH_engine_churn.json" "$baseline/BENCH_engine_churn.json"
GOMAXPROCS=4 go run ./cmd/rbpc-bench \
    -engine -engine-scale 0.02 -engine-steps 12 -bench-dir "$out"
go run ./cmd/rbpc-bench \
    -compare "$baseline/BENCH_engine_churn.json" -bench-dir "$out" \
    -compare-fail-pct 100

echo
echo "== regression gate: sharded churn double-run (-engine-shards 4, -engine-shard-procs 2), -compare-fail-pct 100 =="
# The process-mode churn stage rides inside the gated double-run, so its
# flush-barrier and merged build numbers are recorded on both sides of
# the compare (the gate itself reads the top-level stage metrics).
GOMAXPROCS=8 go run ./cmd/rbpc-bench \
    -engine -engine-scale 0.02 -engine-steps 12 \
    -engine-shards 4 -engine-hot-sources 40 -engine-shard-sweep 1,2,4 \
    -engine-shard-procs 2 \
    -bench-dir "$baseline"
GOMAXPROCS=8 go run ./cmd/rbpc-bench \
    -engine -engine-scale 0.02 -engine-steps 12 \
    -engine-shards 4 -engine-hot-sources 40 -engine-shard-sweep 1,2,4 \
    -engine-shard-procs 2 \
    -bench-dir "$out"
go run ./cmd/rbpc-bench \
    -compare "$baseline/BENCH_engine_churn.json" -bench-dir "$out" \
    -compare-fail-pct 100

echo
echo "bench smoke OK"
