#!/bin/sh
# Bench smoke: exercise the serving benchmark and the incremental
# epoch-builder churn benchmark at reduced scale, on GOMAXPROCS 1 and 4,
# so both the single-core and the parallel writer pipeline get covered.
#
# Timings are reported, never gated — machines differ. The job fails only
# on build errors or on correctness signals: rbpc-serve -strict exits
# non-zero if any query was dropped or answered unroutable.
set -eu
cd "$(dirname "$0")/.."

out="${BENCH_SMOKE_DIR:-$(mktemp -d)}"
echo "bench smoke: writing BENCH_*.json into $out"

go build ./cmd/rbpc-serve ./cmd/rbpc-bench

for procs in 1 4; do
    echo
    echo "== GOMAXPROCS=$procs: rbpc-serve, reduced-scale AS, strict =="
    GOMAXPROCS=$procs go run ./cmd/rbpc-serve \
        -topology as -scale 0.02 -qps 20000 -duration 2s \
        -strict -bench-dir "$out"

    echo
    echo "== GOMAXPROCS=$procs: rbpc-bench -engine, reduced-scale churn =="
    GOMAXPROCS=$procs go run ./cmd/rbpc-bench \
        -engine -engine-scale 0.02 -engine-steps 12 -bench-dir "$out"
done

echo
echo "bench smoke OK"
