#!/bin/sh
# verify.sh — the full local gate: build, vet, tests, and the race
# detector over the packages with real concurrency (the SSSP solver pool,
# the CSR lazy build, the oracle's CLOCK cache, the eval fan-outs, and the
# online engine: epoch snapshots under churn, COW network clones, and the
# sharded metrics).
#
# Usage: scripts/verify.sh   (or: make verify)
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/graph/... ./internal/spath/... ./internal/eval/... \
	./internal/engine/... ./internal/rbpc/... ./internal/mpls/...

echo "verify: OK"
