#!/bin/sh
# verify.sh — the full local gate: formatting, build, vet, the rbpc-lint
# invariant checkers, tests, and the race detector over the packages with
# real concurrency (the SSSP solver pool, the CSR lazy build, the oracle's
# CLOCK cache, the eval fan-outs, and the online engine: epoch snapshots
# under churn, COW network clones, and the sharded metrics).
#
# Usage: scripts/verify.sh   (or: make verify)
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt -l"
unformatted=$(gofmt -l ./cmd ./internal)
if [ -n "$unformatted" ]; then
	echo "gofmt: the following files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> rbpc-lint (invariant checkers: immutable, hotpath, guardedby, atomicmix,"
echo "    lockorder, snapshotescape, deterministic, allocprove)"
go build -o bin/rbpc-lint ./cmd/rbpc-lint
./bin/rbpc-lint -cache "$(pwd)/.cache/rbpc-lint" -unused-allow ./...
go vet -vettool="$(pwd)/bin/rbpc-lint" ./...

echo "==> govulncheck (soft-fail if not installed)"
if command -v govulncheck >/dev/null 2>&1; then
	govulncheck ./... || echo "govulncheck reported findings (non-blocking)" >&2
else
	echo "govulncheck not installed; skipping"
fi

echo "==> go test ./..."
go test ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/graph/... ./internal/spath/... ./internal/eval/... \
	./internal/engine/... ./internal/rbpc/... ./internal/mpls/...

echo "==> chaos conformance suite (long, -race, tagged)"
go test -race -tags chaos -count=1 ./internal/chaos/

echo "verify: OK"
