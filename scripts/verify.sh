#!/bin/sh
# verify.sh — the full local gate: build, vet, tests, and the race
# detector over the packages with real concurrency (the SSSP solver pool,
# the CSR lazy build, the oracle's CLOCK cache, and the eval fan-outs).
#
# Usage: scripts/verify.sh   (or: make verify)
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race (concurrent packages)"
go test -race ./internal/graph/... ./internal/spath/... ./internal/eval/...

echo "verify: OK"
