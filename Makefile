GO ?= go

.PHONY: all build test vet race verify bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/graph/... ./internal/spath/... ./internal/eval/...

# The full pre-commit gate: build + vet + tests + race detector.
verify:
	sh scripts/verify.sh

# Kernel benchmarks (ns/edge and allocs/op for the SSSP hot path).
bench:
	$(GO) test -run '^$$' -bench BenchmarkSSSPKernel -benchmem ./internal/spath/
