GO ?= go

.PHONY: all build test vet lint race chaos verify bench serve-bench bench-smoke

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Content-hash fact cache for direct-mode lint: warm runs with unchanged
# sources re-parse and re-compile nothing (DESIGN.md §15).
RBPC_LINT_CACHE ?= $(CURDIR)/.cache/rbpc-lint

# The rbpc-lint invariant checkers (see internal/analysis and DESIGN.md
# §10/§15): whole-module direct mode first (one cross-package annotation
# index, compiler escape ground truth for allocprove, //rbpc:allow
# staleness audit), then the same binary through go vet's unit protocol,
# which also covers _test.go files and caches per-package results.
lint:
	$(GO) build -o bin/rbpc-lint ./cmd/rbpc-lint
	./bin/rbpc-lint -cache $(RBPC_LINT_CACHE) -unused-allow ./...
	$(GO) vet -vettool=$(CURDIR)/bin/rbpc-lint ./...

race:
	$(GO) test -race ./internal/graph/... ./internal/spath/... ./internal/eval/... \
		./internal/engine/... ./internal/rbpc/... ./internal/mpls/...

# The long fault-injection conformance suite (DESIGN.md §11): seeded chaos
# schedules against the online engine under -race, with the theorem oracles
# armed. Plain `go test ./internal/chaos` runs the bounded smoke variant.
chaos:
	$(GO) test -race -tags chaos -count=1 ./internal/chaos/

# The full pre-commit gate: build + vet + lint + tests + race detector.
verify:
	sh scripts/verify.sh

# Kernel benchmarks (ns/edge and allocs/op for the SSSP hot path).
bench:
	$(GO) test -run '^$$' -bench BenchmarkSSSPKernel -benchmem ./internal/spath/

# Serving benchmark: the online engine under open-loop load with failure
# churn, sharded across 4 pair-space shards with a shard-count sweep;
# writes BENCH_engine.json into the repo root.
serve-bench:
	$(GO) run ./cmd/rbpc-serve -topology as -scale 0.1 -qps 165000 -duration 3s -shards 4 -shard-sweep 1,2,4 -bench-dir .

# Reduced-scale benchmark smoke for CI: rbpc-serve (strict: any dropped or
# unroutable query fails) and rbpc-bench -engine on GOMAXPROCS 1 and 4,
# multi-core serve stages at GOMAXPROCS 8 (batched submit, hybrid
# restoration switchover), and a same-machine churn double-run gated by
# -compare-fail-pct. Cross-machine timings are reported, not gated.
bench-smoke:
	sh scripts/bench_smoke.sh
