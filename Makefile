GO ?= go

.PHONY: all build test vet race verify bench serve-bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/graph/... ./internal/spath/... ./internal/eval/... \
		./internal/engine/... ./internal/rbpc/... ./internal/mpls/...

# The full pre-commit gate: build + vet + tests + race detector.
verify:
	sh scripts/verify.sh

# Kernel benchmarks (ns/edge and allocs/op for the SSSP hot path).
bench:
	$(GO) test -run '^$$' -bench BenchmarkSSSPKernel -benchmem ./internal/spath/

# Serving benchmark: the online engine under open-loop load with failure
# churn; writes BENCH_engine.json into the repo root.
serve-bench:
	$(GO) run ./cmd/rbpc-serve -topology as -scale 0.1 -qps 150000 -duration 3s -bench-dir .
