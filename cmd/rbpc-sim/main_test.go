package main

import (
	"strings"
	"testing"

	"rbpc"
)

// converge builds the hybrid deployment on a Waxman topology, fails the
// first non-bridge link, and runs the simulation to convergence —
// exactly the rbpc-sim main flow.
func converge(t *testing.T, seed int64) (*rbpc.Graph, *rbpc.Deployment, rbpc.EdgeID) {
	t.Helper()
	g := rbpc.NewWaxman(16, 0.7, 0.4, seed)
	dep, err := rbpc.NewDeployment(g, rbpc.DefaultDeployConfig())
	if err != nil {
		t.Fatal(err)
	}
	var eng rbpc.Engine
	proto := rbpc.NewLinkState(g, &eng, rbpc.DefaultLinkStateConfig())
	hyb := rbpc.NewHybridDeployment(dep, proto, &eng, rbpc.EdgeBypass)

	failEdge := rbpc.EdgeID(-1)
	for _, e := range g.Edges() {
		if rbpc.Connected(rbpc.FailEdges(g, e.ID)) {
			failEdge = e.ID
			break
		}
	}
	if failEdge < 0 {
		t.Fatal("topology has only bridges")
	}
	if err := hyb.FailLink(failEdge); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	return g, dep, failEdge
}

// TestCheckConvergedClean: after convergence the deployment matches the
// reference model — the divergence gate must stay silent on a healthy
// run.
func TestCheckConvergedClean(t *testing.T) {
	for _, seed := range []int64{7, 11, 23} {
		g, dep, failEdge := converge(t, seed)
		if err := checkConverged(g, dep.Net(), failEdge); err != nil {
			t.Errorf("seed %d: healthy run flagged as divergent: %v", seed, err)
		}
	}
}

// TestCheckConvergedCatchesSabotage is the regression test for the
// divergence exit path: a corrupted forwarding table must be detected,
// where the old rbpc-sim would have merely logged a dropped probe.
func TestCheckConvergedCatchesSabotage(t *testing.T) {
	g, dep, failEdge := converge(t, 7)

	// Sabotage: remove the ingress FEC mapping of the failed link's
	// endpoints (a pair that is provably still connected — the failed
	// link is a non-bridge).
	e := g.Edge(failEdge)
	dep.Net().ClearFEC(e.U, e.V)

	err := checkConverged(g, dep.Net(), failEdge)
	if err == nil {
		t.Fatal("checkConverged accepted a deployment with a deleted FEC entry")
	}
	if !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("unexpected divergence kind: %v", err)
	}
}
