// Command rbpc-sim runs an event-driven failure scenario on an RBPC
// deployment and prints the restoration timeline: when the link died,
// when local RBPC patched it, when each source re-optimized, and how a
// probe packet's route evolved — next to what the conventional
// teardown-and-resignal baseline would have done.
//
// Usage:
//
//	rbpc-sim [-nodes N] [-seed N] [-scheme end-route|edge-bypass] [-src A -dst B]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"rbpc"
)

func main() {
	nodes := flag.Int("nodes", 16, "Waxman topology size")
	seed := flag.Int64("seed", 7, "random seed")
	schemeName := flag.String("scheme", "edge-bypass", "local scheme: end-route or edge-bypass")
	srcFlag := flag.Int("src", -1, "probe source (default: an endpoint of a broken pair)")
	dstFlag := flag.Int("dst", -1, "probe destination")
	showTrace := flag.Bool("trace", false, "print the per-hop label operations of each probe")
	scriptPath := flag.String("script", "", "run a scenario script instead of the default single-failure demo")
	flag.Parse()

	scheme := rbpc.EdgeBypass
	switch *schemeName {
	case "edge-bypass":
	case "end-route":
		scheme = rbpc.EndRoute
	default:
		fmt.Fprintln(os.Stderr, "rbpc-sim: unknown scheme", *schemeName)
		os.Exit(1)
	}

	g := rbpc.NewWaxman(*nodes, 0.7, 0.4, *seed)
	fmt.Printf("topology: %d nodes, %d links\n", g.Order(), g.Size())

	dep, err := rbpc.NewDeployment(g, rbpc.DefaultDeployConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbpc-sim:", err)
		os.Exit(1)
	}
	var eng rbpc.Engine
	proto := rbpc.NewLinkState(g, &eng, rbpc.DefaultLinkStateConfig())
	hyb := rbpc.NewHybridDeployment(dep, proto, &eng, scheme)

	if *scriptPath != "" {
		runScript(hyb, &eng, *scriptPath)
		return
	}

	// Pick a non-bridge link to fail so restoration is possible.
	var failEdge rbpc.EdgeID = -1
	for _, e := range g.Edges() {
		if rbpc.Connected(rbpc.FailEdges(g, e.ID)) {
			failEdge = e.ID
			break
		}
	}
	if failEdge < 0 {
		fmt.Fprintln(os.Stderr, "rbpc-sim: topology has only bridges; try another seed")
		os.Exit(1)
	}
	edge := g.Edge(failEdge)

	// Probe pair: flag-selected or the failed link's endpoints.
	src, dst := rbpc.NodeID(*srcFlag), rbpc.NodeID(*dstFlag)
	if *srcFlag < 0 || *dstFlag < 0 {
		src, dst = edge.U, edge.V
	}

	probe := func(label string) {
		pkt, err := dep.Net().SendIP(src, dst)
		if err != nil {
			fmt.Printf("  [%8.2fms] probe %d->%d: DROPPED (%v)\n", eng.Now(), src, dst, err)
		} else {
			fmt.Printf("  [%8.2fms] probe %d->%d: delivered in %d hops via %v (%s)\n",
				eng.Now(), src, dst, pkt.Hops, pkt.Trace, label)
		}
		if *showTrace {
			rbpc.WriteTrace(os.Stdout, dep.Net(), rbpc.TraceRoute(dep.Net(), src, dst))
		}
	}

	fmt.Printf("\nfailing link %d (%d-%d) at t=0\n", failEdge, edge.U, edge.V)
	probe("pre-failure")
	if err := hyb.FailLink(failEdge); err != nil {
		fmt.Fprintln(os.Stderr, "rbpc-sim:", err)
		os.Exit(1)
	}
	probe("just after physical failure")

	// Step the simulation, probing after detection and after convergence.
	eng.RunUntil(10.5) // past the 10ms detection delay
	fmt.Printf("\nafter detection (t=%.2fms):\n", eng.Now())
	if at, ok := hyb.LocalPatchedAt[failEdge]; ok {
		fmt.Printf("  local %s patch applied at %.2fms\n", scheme, at)
	} else {
		fmt.Println("  no local patch (link may be a bridge for some LSPs)")
	}
	probe("local RBPC only")

	eng.Run()
	fmt.Printf("\nafter link-state convergence (t=%.2fms):\n", eng.Now())
	type upd struct {
		pr rbpc.Pair
		at float64
	}
	var updates []upd
	for pr, at := range hyb.SourceUpdatedAt {
		updates = append(updates, upd{pr, float64(at)})
	}
	sort.Slice(updates, func(i, j int) bool { return updates[i].at < updates[j].at })
	for _, u := range updates {
		fmt.Printf("  source %3d re-optimized %d->%d at %.2fms\n", u.pr.Src, u.pr.Src, u.pr.Dst, u.at)
	}
	probe("source-router RBPC")

	// Conformance gate: the converged deployment must match the reference
	// model (true shortest paths of the failed graph) on every pair. A
	// divergence is a bug, not a log line — print the seed that exposes it
	// and exit non-zero so scripted sweeps fail loudly.
	if err := checkConverged(g, dep.Net(), failEdge); err != nil {
		fmt.Fprintf(os.Stderr, "rbpc-sim: divergence (seed %d): %v\n", *seed, err)
		os.Exit(1)
	}
	fmt.Println("\nreference-model check: all pairs match the failed graph's shortest paths")

	// Baseline comparison.
	fmt.Println("\nconventional baseline (teardown + LDP re-signaling):")
	var balEng rbpc.Engine
	bal, err := rbpc.NewBaseline(g, &balEng, rbpc.DefaultSignalingConfig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbpc-sim:", err)
		os.Exit(1)
	}
	bal.NotifyDelay = rbpc.DefaultLinkStateConfig().DetectDelay
	bal.FailLink(failEdge)
	balEng.Run()
	var worst float64
	for _, at := range bal.RestoredAt {
		if float64(at) > worst {
			worst = float64(at)
		}
	}
	fmt.Printf("  %d LDP messages, last pair restored at %.2fms\n",
		bal.Signaling().Total(), worst)
	st := dep.Net().Stats()
	fmt.Printf("\nRBPC summary: %d FEC updates, %d ILM row patches, 0 signaling messages after provisioning\n",
		st.FECUpdates, st.ILMReplacements)
}

// runScript executes a scenario file against the hybrid deployment and
// prints its event log.
func runScript(hyb *rbpc.HybridDeployment, eng *rbpc.Engine, path string) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbpc-sim:", err)
		os.Exit(1)
	}
	defer f.Close()
	ops, err := rbpc.ParseScenario(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbpc-sim:", err)
		os.Exit(1)
	}
	log, err := rbpc.RunScenario(hyb, eng, ops)
	for _, ev := range log {
		fmt.Printf("  [%8.2fms] %s\n", ev.At, ev.Line)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbpc-sim:", err)
		os.Exit(1)
	}
}
