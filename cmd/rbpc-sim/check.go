package main

import (
	"fmt"

	"rbpc"
)

// checkConverged compares the converged deployment against the reference
// model: the failed graph's true shortest paths. Every pair the reference
// says is connected must be delivered by the data plane (at the reference
// hop count on unit-weight topologies), every disconnected pair must be
// dropped, and the forwarding tables must be loop-free. It returns an
// error describing the first divergence found, nil if the deployment
// matches the model on all pairs.
func checkConverged(g *rbpc.Graph, net *rbpc.MPLSNetwork, failed ...rbpc.EdgeID) error {
	if rep := rbpc.VerifyTables(net); !rep.LoopFree() {
		return fmt.Errorf("forwarding tables not loop-free: %v", rep)
	}
	fv := rbpc.FailEdges(g, failed...)
	n := g.Order()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			src, dst := rbpc.NodeID(s), rbpc.NodeID(d)
			ref, connected := rbpc.ShortestPath(fv, src, dst)
			pkt, err := net.SendIP(src, dst)
			switch {
			case connected && err != nil:
				return fmt.Errorf("pair %d->%d: data plane dropped the packet (%v), reference model reaches it in %d hops",
					s, d, err, ref.Hops())
			case !connected && err == nil:
				return fmt.Errorf("pair %d->%d: data plane delivered in %d hops, reference model says the pair is disconnected",
					s, d, pkt.Hops)
			case connected && g.UnitWeights() && pkt.Hops != ref.Hops():
				return fmt.Errorf("pair %d->%d: data plane took %d hops, reference shortest path is %d hops",
					s, d, pkt.Hops, ref.Hops())
			}
		}
	}
	return nil
}
