// Command rbpc-lint runs the repository's invariant checker suite (see
// internal/analysis): immutable, hotpath, guardedby, atomicmix,
// lockorder, snapshotescape, deterministic, and allocprove.
//
// Two modes:
//
//	rbpc-lint ./...                     whole-module mode: loads every
//	                                    matched package, builds the
//	                                    module-wide annotation index, and
//	                                    checks each package against it.
//	                                    This is what `make lint` runs.
//
//	go vet -vettool=$(which rbpc-lint) ./...
//	                                    vet-tool mode: rbpc-lint speaks the
//	                                    cmd/go vet config protocol (one
//	                                    *.cfg per compilation unit), reads
//	                                    dependency annotations from vet
//	                                    facts files, and writes its own for
//	                                    packages that depend on it.
//
// Whole-module flags:
//
//	-checkers a,b      run only the named checkers (default: all)
//	-unused-allow      fail when a //rbpc:allow suppresses nothing
//	-github            emit findings as GitHub Actions annotations
//	-json              emit findings as JSON
//	-cache DIR         content-hash fact cache (default $RBPC_LINT_CACHE)
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"rbpc/internal/analysis"
)

// selfID hashes the running binary into the actionID/contentID shape
// cmd/go expects after "buildID=", so vet's result cache is keyed by the
// tool's actual contents and a rebuilt rbpc-lint invalidates stale
// results.
func selfID() string {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	sum := fmt.Sprintf("%x", h.Sum(nil))[:32]
	return sum + "/" + sum
}

func main() {
	// cmd/go probes vet tools with -V=full before handing them work; the
	// reply has to look like "name version stamp" for the build cache key.
	versionFlag := flag.Bool("V", false, "print version and exit (vet tool protocol)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON")
	githubFlag := flag.Bool("github", false, "emit diagnostics as GitHub Actions ::error annotations")
	checkersFlag := flag.String("checkers", "", "comma-separated checker names to run (default: all)")
	unusedAllowFlag := flag.Bool("unused-allow", false, "fail when a //rbpc:allow directive suppresses nothing")
	cacheFlag := flag.String("cache", os.Getenv("RBPC_LINT_CACHE"), "fact cache directory (empty disables; default $RBPC_LINT_CACHE)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rbpc-lint [flags] [packages]   or   go vet -vettool=rbpc-lint [packages]\n")
		flag.PrintDefaults()
	}
	// Accept -V=full without choking on the "full" value, and answer the
	// -flags probe (cmd/go asks vet tools for their flag schema as JSON;
	// rbpc-lint exposes none to vet).
	args := os.Args[1:]
	for i, a := range args {
		if a == "-V=full" || a == "--V=full" {
			args[i] = "-V"
		}
		if a == "-flags" || a == "--flags" {
			fmt.Println("[]")
			return
		}
	}
	if err := flag.CommandLine.Parse(args); err != nil {
		os.Exit(1)
	}
	if *versionFlag {
		fmt.Printf("rbpc-lint version devel buildID=%s\n", selfID())
		return
	}

	rest := flag.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		os.Exit(vetUnit(rest[0]))
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	os.Exit(direct(rest, directOptions{
		json:        *jsonFlag,
		github:      *githubFlag,
		checkers:    *checkersFlag,
		unusedAllow: *unusedAllowFlag,
		cacheDir:    *cacheFlag,
	}))
}

type directOptions struct {
	json        bool
	github      bool
	checkers    string
	unusedAllow bool
	cacheDir    string
}

// direct is whole-module mode.
func direct(patterns []string, opts directOptions) int {
	analyzers := analysis.All
	if opts.checkers != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(opts.checkers, ","))
		if err != nil {
			fmt.Fprintf(os.Stderr, "rbpc-lint: %v\n", err)
			return 1
		}
	}
	escapes := false
	for _, a := range analyzers {
		if a == analysis.AllocProve {
			escapes = true
		}
	}
	res, err := analysis.AnalyzeModuleOpts(analysis.ModuleOptions{
		Dir:         ".",
		Patterns:    patterns,
		Analyzers:   analyzers,
		Escapes:     escapes,
		CacheDir:    opts.cacheDir,
		UnusedAllow: opts.unusedAllow,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "rbpc-lint: %v\n", err)
		return 1
	}
	code := report(res.Diags, opts)
	if opts.unusedAllow && len(res.StaleAllows) > 0 {
		for _, a := range res.StaleAllows {
			msg := fmt.Sprintf("%s: stale //rbpc:allow %s suppresses nothing; remove it", a.Site, a.Name)
			if opts.github {
				pos := strings.SplitN(a.Site, ":", 2)
				line := ""
				if len(pos) == 2 {
					line = pos[1]
				}
				fmt.Printf("::error file=%s,line=%s::%s\n", pos[0], line, msg)
			}
			fmt.Fprintln(os.Stderr, msg)
		}
		fmt.Fprintf(os.Stderr, "rbpc-lint: %d stale allow(s)\n", len(res.StaleAllows))
		if code == 0 {
			code = 2
		}
	}
	return code
}

func report(diags []analysis.Diagnostic, opts directOptions) int {
	if opts.json {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "rbpc-lint: %v\n", err)
			return 1
		}
		if len(diags) > 0 {
			return 2
		}
		return 0
	}
	for _, d := range diags {
		if opts.github {
			fmt.Printf("::error file=%s,line=%d,col=%d::%s (%s)\n",
				d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rbpc-lint: %d finding(s)\n", len(diags))
		return 2
	}
	return 0
}

// vetConfig mirrors the fields of cmd/go's vet config file this tool
// needs (the same JSON unitchecker reads).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit is vet-tool mode: analyze one compilation unit described by a
// cfg file, exchanging annotation facts with dependency units.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rbpc-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rbpc-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	fset := token.NewFileSet()
	imp := analysis.ExportDataImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	pkg, err := analysis.CheckPackage(fset, imp, cfg.ImportPath, "", cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "rbpc-lint: %v\n", err)
		return 1
	}

	// Own annotations plus every dependency's exported facts.
	idx := analysis.NewIndex()
	analysis.ScanPackage(fset, pkg.Files, pkg.Info, idx)
	ownHotpath := len(idx.Hotpath) > 0 // before dep merge: is the escape compile worth it?
	depPaths := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		depPaths = append(depPaths, path)
	}
	sort.Strings(depPaths)
	for _, path := range depPaths {
		raw, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil {
			continue // dependency ran an older tool or produced no facts
		}
		depIdx, err := analysis.UnmarshalFacts(raw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rbpc-lint: facts of %s: %v\n", path, err)
			return 1
		}
		idx.Merge(depIdx)
	}

	// Facts out: the merged index, so facts propagate transitively.
	if cfg.VetxOutput != "" {
		facts, err := idx.MarshalFacts()
		if err == nil {
			err = os.WriteFile(cfg.VetxOutput, facts, 0o666)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rbpc-lint: writing facts: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// Compiler escape ground truth for allocprove: every dependency's
	// export data is in the unit's PackageFile, so the unit compiles
	// standalone. Skipped (allocprove stays silent) if the compile fails —
	// e.g. cgo or assembly units the plain compiler can't build alone.
	var escapes []analysis.Escape
	if ownHotpath {
		if importCfg, err := analysis.WriteImportCfg(os.TempDir(), cfg.PackageFile, cfg.ImportMap); err == nil {
			if esc, err := analysis.CollectEscapes(analysis.EscapeConfig{
				Dir: cfg.Dir, ImportPath: cfg.ImportPath, GoFiles: cfg.GoFiles, ImportCfg: importCfg,
			}); err == nil {
				escapes = esc
			}
			os.Remove(importCfg)
		}
	}

	diags := analysis.RunAnalyzers(analysis.All, &analysis.Unit{
		Fset: fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info, Escapes: escapes,
	}, idx)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", relPos(d.Pos, cfg.Dir), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// relPos trims the unit's directory prefix for readable vet output.
func relPos(pos token.Position, dir string) string {
	s := pos.String()
	if dir != "" && strings.HasPrefix(s, dir+string(os.PathSeparator)) {
		return s[len(dir)+1:]
	}
	return s
}
