// Command rbpc-lint runs the repository's invariant checker suite (see
// internal/analysis): immutable, hotpath, guardedby, and atomicmix.
//
// Two modes:
//
//	rbpc-lint ./...                     whole-module mode: loads every
//	                                    matched package, builds the
//	                                    module-wide annotation index, and
//	                                    checks each package against it.
//	                                    This is what `make lint` runs.
//
//	go vet -vettool=$(which rbpc-lint) ./...
//	                                    vet-tool mode: rbpc-lint speaks the
//	                                    cmd/go vet config protocol (one
//	                                    *.cfg per compilation unit), reads
//	                                    dependency annotations from vet
//	                                    facts files, and writes its own for
//	                                    packages that depend on it.
//
// Exit status: 0 clean, 1 operational error, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"rbpc/internal/analysis"
)

// selfID hashes the running binary into the actionID/contentID shape
// cmd/go expects after "buildID=", so vet's result cache is keyed by the
// tool's actual contents and a rebuilt rbpc-lint invalidates stale
// results.
func selfID() string {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	sum := fmt.Sprintf("%x", h.Sum(nil))[:32]
	return sum + "/" + sum
}

func main() {
	// cmd/go probes vet tools with -V=full before handing them work; the
	// reply has to look like "name version stamp" for the build cache key.
	versionFlag := flag.Bool("V", false, "print version and exit (vet tool protocol)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: rbpc-lint [packages]   or   go vet -vettool=rbpc-lint [packages]\n")
		flag.PrintDefaults()
	}
	// Accept -V=full without choking on the "full" value, and answer the
	// -flags probe (cmd/go asks vet tools for their flag schema as JSON;
	// rbpc-lint exposes none to vet).
	args := os.Args[1:]
	for i, a := range args {
		if a == "-V=full" || a == "--V=full" {
			args[i] = "-V"
		}
		if a == "-flags" || a == "--flags" {
			fmt.Println("[]")
			return
		}
	}
	if err := flag.CommandLine.Parse(args); err != nil {
		os.Exit(1)
	}
	if *versionFlag {
		fmt.Printf("rbpc-lint version devel buildID=%s\n", selfID())
		return
	}

	rest := flag.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		os.Exit(vetUnit(rest[0]))
	}
	if len(rest) == 0 {
		rest = []string{"./..."}
	}
	os.Exit(direct(rest, *jsonFlag))
}

// direct is whole-module mode.
func direct(patterns []string, asJSON bool) int {
	diags, err := analysis.AnalyzeModule(analysis.All, ".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rbpc-lint: %v\n", err)
		return 1
	}
	return report(diags, asJSON)
}

func report(diags []analysis.Diagnostic, asJSON bool) int {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "rbpc-lint: %v\n", err)
			return 1
		}
		if len(diags) > 0 {
			return 2
		}
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "rbpc-lint: %d finding(s)\n", len(diags))
		return 2
	}
	return 0
}

// vetConfig mirrors the fields of cmd/go's vet config file this tool
// needs (the same JSON unitchecker reads).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit is vet-tool mode: analyze one compilation unit described by a
// cfg file, exchanging annotation facts with dependency units.
func vetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rbpc-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rbpc-lint: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	fset := token.NewFileSet()
	imp := analysis.ExportDataImporter(fset, func(path string) (string, bool) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	pkg, err := analysis.CheckPackage(fset, imp, cfg.ImportPath, "", cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "rbpc-lint: %v\n", err)
		return 1
	}

	// Own annotations plus every dependency's exported facts.
	idx := analysis.NewIndex()
	analysis.ScanPackage(fset, pkg.Files, pkg.Info, idx)
	depPaths := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		depPaths = append(depPaths, path)
	}
	sort.Strings(depPaths)
	for _, path := range depPaths {
		raw, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil {
			continue // dependency ran an older tool or produced no facts
		}
		depIdx, err := analysis.UnmarshalFacts(raw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rbpc-lint: facts of %s: %v\n", path, err)
			return 1
		}
		idx.Merge(depIdx)
	}

	// Facts out: the merged index, so facts propagate transitively.
	if cfg.VetxOutput != "" {
		facts, err := idx.MarshalFacts()
		if err == nil {
			err = os.WriteFile(cfg.VetxOutput, facts, 0o666)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rbpc-lint: writing facts: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	diags := analysis.RunAnalyzers(analysis.All, fset, pkg.Files, pkg.Types, pkg.Info, idx)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", relPos(d.Pos, cfg.Dir), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// relPos trims the unit's directory prefix for readable vet output.
func relPos(pos token.Position, dir string) string {
	s := pos.String()
	if dir != "" && strings.HasPrefix(s, dir+string(os.PathSeparator)) {
		return s[len(dir)+1:]
	}
	return s
}
