package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"rbpc/internal/analysis"
)

// buildLint compiles the rbpc-lint binary into a test temp dir. The
// build cache makes repeat builds cheap.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "rbpc-lint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building rbpc-lint: %v\n%s", err, out)
	}
	return bin
}

// TestVetProtocolProbes pins the two probes cmd/go sends a vet tool
// before handing it work: -V=full must answer "name version buildID=..."
// (the build cache key), and -flags must answer the tool's vet-exposed
// flag schema as JSON.
func TestVetProtocolProbes(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary build in -short mode")
	}
	bin := buildLint(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	re := regexp.MustCompile(`^rbpc-lint version \S+ buildID=[0-9a-f]{32}/[0-9a-f]{32}\n$`)
	if !re.Match(out) {
		t.Errorf("-V=full output %q does not match %s", out, re)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	var flags []any
	if err := json.Unmarshal(out, &flags); err != nil || len(flags) != 0 {
		t.Errorf("-flags output %q, want the empty JSON list", out)
	}
}

// TestVetCfgRoundTrip drives vet-tool mode directly with a hand-written
// unit cfg: the tool must analyze the unit's files, report the injected
// violation, and serialize the unit's facts to VetxOutput in the format
// UnmarshalFacts reads back.
func TestVetCfgRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary build in -short mode")
	}
	bin := buildLint(t)
	dir := t.TempDir()

	src := filepath.Join(dir, "p.go")
	const pSrc = `package p

//rbpc:deterministic
func Sum(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
`
	if err := os.WriteFile(src, []byte(pSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "p.vetx")
	cfgPath := filepath.Join(dir, "vet.cfg")
	cfg, err := json.Marshal(map[string]any{
		"ID":         "p",
		"Dir":        dir,
		"ImportPath": "p",
		"GoFiles":    []string{src},
		"VetxOutput": vetx,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cfgPath, cfg, 0o644); err != nil {
		t.Fatal(err)
	}

	out, err := exec.Command(bin, cfgPath).CombinedOutput()
	if err == nil {
		t.Fatalf("vet unit exited 0, want findings; output:\n%s", out)
	}
	if !strings.Contains(string(out), "ranges over a map") {
		t.Errorf("vet unit output lacks the map-range finding:\n%s", out)
	}

	facts, err := os.ReadFile(vetx)
	if err != nil {
		t.Fatalf("VetxOutput not written: %v", err)
	}
	idx, err := analysis.UnmarshalFacts(facts)
	if err != nil {
		t.Fatalf("round-tripping facts: %v", err)
	}
	if !idx.Deterministic["p.Sum"] {
		t.Errorf("facts lost the deterministic mark on p.Sum: %s", facts)
	}
}

// TestGoVetEndToEnd runs the real `go vet -vettool` pipeline over a
// throwaway module: package a annotates an epoch-scoped type (and hides a
// determinism violation in its _test.go file), package b stores a's type
// in a global. The vet run must catch both — the b finding proves the
// epochscoped fact crossed packages through the vetx files, the a_test.go
// finding proves test files are covered.
func TestGoVetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go vet pipeline in -short mode")
	}
	bin := buildLint(t)
	mod := t.TempDir()

	files := map[string]string{
		"go.mod": "module vettest\n\ngo 1.22\n",
		"a/a.go": `package a

// Snap is one epoch's immutable view.
//
//rbpc:epochscoped
type Snap struct {
	N int
}

// New builds a Snap.
func New(n int) *Snap { return &Snap{N: n} }
`,
		"a/a_test.go": `package a

import (
	"testing"
	"time"
)

//rbpc:deterministic
func replaySeed() int64 {
	return time.Now().Unix()
}

func TestNew(t *testing.T) {
	if New(int(replaySeed()/replaySeed())).N != 1 {
		t.Fatal("want 1")
	}
}
`,
		"b/b.go": `package b

import "vettest/a"

var last *a.Snap

// Stash caches the latest snapshot.
func Stash(s *a.Snap) {
	last = s
}
`,
	}
	for name, src := range files {
		path := filepath.Join(mod, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet exited 0, want findings; output:\n%s", out)
	}
	text := string(out)
	for _, want := range []string{
		"epoch-scoped", // snapshotescape fired in b...
		"a.Snap",       // ...on the cross-package fact from a's vetx
		"stored into package-level variable last",
		"wall clock", // deterministic fired...
		"a_test.go",  // ...inside a test file
	} {
		if !strings.Contains(text, want) {
			t.Errorf("go vet output lacks %q:\n%s", want, text)
		}
	}
}
