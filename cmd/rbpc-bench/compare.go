package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// gatedStages are the stage metrics -compare-fail-pct hard-fails on: the
// hot-path timings whose regressions the bench-smoke CI job exists to
// catch. Lower is better for all of them.
var gatedStages = []string{
	"stage_solve_seconds",
	"stage_assemble_seconds",
	"epoch_build_p99_seconds",
}

// runCompare loads an old BENCH_*.json record, resolves the current record
// of the same name (from dir, the old file's directory if dir is empty),
// and prints an old -> new delta for every numeric field. Seconds-like
// fields get a percentage so regressions jump out in CI logs; string
// fields are printed only when they differ (e.g. a Go version bump).
//
// When failPct > 0, a gated stage metric (gatedStages) that regressed by
// more than failPct percent fails the compare with an error naming every
// offending metric, so CI can gate on real hot-path regressions while
// ignoring noise in the informational fields.
func runCompare(out io.Writer, oldPath, dir string, failPct float64) error {
	old, err := loadRecord(oldPath)
	if err != nil {
		return err
	}
	name, _ := old["name"].(string)
	if name == "" {
		return fmt.Errorf("%s has no \"name\" field; not a BENCH record", oldPath)
	}
	if dir == "" {
		dir = filepath.Dir(oldPath)
	}
	newPath := filepath.Join(dir, "BENCH_"+name+".json")
	cur, err := loadRecord(newPath)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "=== Compare %q: %s -> %s ===\n", name, oldPath, newPath)
	keys := make([]string, 0, len(old))
	for k := range old {
		keys = append(keys, k)
	}
	for k := range cur {
		if _, ok := old[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)

	var regressed []string
	for _, k := range keys {
		ov, oldHas := old[k]
		nv, curHas := cur[k]
		switch {
		case !oldHas:
			fmt.Fprintf(out, "  %-28s (new) %v\n", k, nv)
		case !curHas:
			fmt.Fprintf(out, "  %-28s %v (dropped)\n", k, ov)
		default:
			of, oNum := ov.(float64)
			nf, nNum := nv.(float64)
			if oNum && nNum {
				line := fmt.Sprintf("  %-28s %v -> %v", k, of, nf)
				var pct float64
				if of != 0 && of != nf {
					pct = 100 * (nf - of) / math.Abs(of)
					line += fmt.Sprintf("  (%+.1f%%)", pct)
				}
				if failPct > 0 && pct > failPct && isGated(k) {
					line += "  REGRESSED"
					regressed = append(regressed, fmt.Sprintf("%s %+.1f%% (limit %+.1f%%)", k, pct, failPct))
				}
				fmt.Fprintln(out, line)
			} else if fmt.Sprint(ov) != fmt.Sprint(nv) {
				fmt.Fprintf(out, "  %-28s %v -> %v\n", k, ov, nv)
			}
		}
	}
	if len(regressed) > 0 {
		return fmt.Errorf("gated stage regressions: %s", strings.Join(regressed, "; "))
	}
	return nil
}

func isGated(key string) bool {
	for _, g := range gatedStages {
		if g == key {
			return true
		}
	}
	return false
}

func loadRecord(path string) (map[string]interface{}, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec map[string]interface{}
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rec, nil
}
