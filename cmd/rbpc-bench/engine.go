package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"rbpc/internal/engine"
	"rbpc/internal/failure"
	"rbpc/internal/graph"
	"rbpc/internal/probe"
	"rbpc/internal/rbpc"
	"rbpc/internal/shard"
	"rbpc/internal/shardrpc"
	"rbpc/internal/topology"
)

// engineChurnRecord is the BENCH_engine_churn.json payload: the common
// stage-record header plus the incremental epoch builder's per-stage
// timings and reuse counters, measured over a deterministic synchronous
// churn schedule (no open-loop load — every epoch build is flushed and
// timed on its own, so the numbers isolate the writer pipeline).
type engineChurnRecord struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	Seed    int64   `json:"seed"`
	// FullScale is derived from Scale (>= 1.0 is the paper's AS size) —
	// the -full flag governs the table stages, not this one, so the
	// recorded provenance matches the topology actually churned.
	FullScale bool    `json:"full_scale"`
	Scale     float64 `json:"scale"`
	MaxProcs  int     `json:"gomaxprocs"`
	GoVersion string  `json:"go_version"`

	Nodes  int   `json:"nodes"`
	Links  int   `json:"links"`
	Steps  int   `json:"steps"`
	Epochs int64 `json:"epochs"`

	BuildP50Secs float64 `json:"epoch_build_p50_seconds"`
	BuildP99Secs float64 `json:"epoch_build_p99_seconds"`
	CacheHitRate float64 `json:"plan_cache_hit_rate"`

	// Sharding telemetry: shard count (1 = single engine), provisioned
	// hot sources (0 = all), and resident vs dense routing-matrix bytes.
	Shards        int   `json:"shards"`
	HotSources    int   `json:"hot_sources"`
	PlanRowBytes  int64 `json:"plan_row_bytes"`
	DenseRowBytes int64 `json:"dense_row_bytes"`

	RowsReused       int64   `json:"rows_reused"`
	RowsRecomputed   int64   `json:"rows_recomputed"`
	AffectedEntering int64   `json:"affected_entering"`
	AffectedLeaving  int64   `json:"affected_leaving"`
	StaleRoutes      int64   `json:"stale_routes"`
	RepairImproved   int64   `json:"repair_improved"`
	TreesAdopted     int64   `json:"trees_adopted"`
	StageAffectedSec float64 `json:"stage_affected_seconds"`
	StageSolveSec    float64 `json:"stage_solve_seconds"`
	StageResolveSec  float64 `json:"stage_resolve_seconds"`
	StageAssembleSec float64 `json:"stage_assemble_seconds"`

	// Schemes holds the four-way restoration-scheme comparison: the
	// identical churn schedule re-run per scheme on a fresh single engine
	// with the wall-clock time-to-restore prober attached to every
	// failure. restore_p50_seconds is the comparison's headline metric;
	// the local-plan quality counters are zero under the source scheme.
	Schemes []schemeChurnEntry `json:"scheme_comparison,omitempty"`
	// Sweep holds one entry per -engine-sweep GOMAXPROCS value, each a
	// fresh engine driven through the identical schedule.
	Sweep []engineSweepEntry `json:"gomaxprocs_sweep,omitempty"`
	// ShardSweep holds one entry per -engine-shard-sweep shard count,
	// each a fresh coordinator driven through the identical schedule.
	ShardSweep []engineShardSweepEntry `json:"shard_sweep,omitempty"`
	// ProcessMode holds the -engine-shard-procs stage: the identical
	// schedule driven through forked worker processes over the wire.
	ProcessMode *processModeChurn `json:"process_mode,omitempty"`
}

// processModeChurn is the process-mode churn stage: every event a burst
// broadcast plus a cross-process flush barrier, every epoch built inside
// a worker process with its own GC. flush_p99_seconds is the
// coordinator-observed barrier latency (burst applied, epochs rebuilt,
// snapshot frames landed, acks read); the build percentiles are the
// workers' own, merged over the wire.
type processModeChurn struct {
	ShardProcs    int     `json:"shard_procs"`
	Seconds       float64 `json:"seconds"`
	InprocSeconds float64 `json:"inproc_seconds"`
	Epochs        int64   `json:"epochs"`
	BuildP50Secs  float64 `json:"epoch_build_p50_seconds"`
	BuildP99Secs  float64 `json:"epoch_build_p99_seconds"`
	FlushP50Secs  float64 `json:"flush_p50_seconds"`
	FlushP99Secs  float64 `json:"flush_p99_seconds"`
	TornFrames    int64   `json:"torn_frames"`
}

// engineSweepEntry is one GOMAXPROCS point of the churn sweep.
type engineSweepEntry struct {
	MaxProcs         int     `json:"gomaxprocs"`
	Seconds          float64 `json:"seconds"`
	BuildP50Secs     float64 `json:"epoch_build_p50_seconds"`
	BuildP99Secs     float64 `json:"epoch_build_p99_seconds"`
	StageSolveSec    float64 `json:"stage_solve_seconds"`
	StageAssembleSec float64 `json:"stage_assemble_seconds"`
}

// schemeChurnEntry is one scheme's row of the four-way comparison.
type schemeChurnEntry struct {
	Scheme            string  `json:"scheme"`
	RestoreSamples    int64   `json:"restore_samples"`
	RestoreP50Secs    float64 `json:"restore_p50_seconds"`
	RestoreP99Secs    float64 `json:"restore_p99_seconds"`
	RestoreMaxSecs    float64 `json:"restore_max_seconds"`
	LocalBuildP50Secs float64 `json:"local_build_p50_seconds"`
	LocalBuildP99Secs float64 `json:"local_build_p99_seconds"`
	StretchMean       float64 `json:"stretch_mean_permille"`
	DetourHopsMean    float64 `json:"detour_hops_mean"`
	LocalPairs        int64   `json:"local_pairs"`
	LocalUnrestorable int64   `json:"local_unrestorable"`
	Converged         int64   `json:"converged_transitions"`
}

// engineShardSweepEntry is one shard-count point of the churn sweep.
type engineShardSweepEntry struct {
	Shards       int     `json:"shards"`
	Seconds      float64 `json:"seconds"`
	BuildP50Secs float64 `json:"epoch_build_p50_seconds"`
	BuildP99Secs float64 `json:"epoch_build_p99_seconds"`
	PlanRowBytes int64   `json:"plan_row_bytes"`
}

// parseProcsList parses a comma-separated GOMAXPROCS list ("1,2,4,8").
// An empty string means no sweep.
func parseProcsList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var procs []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad GOMAXPROCS sweep value %q (want positive integers, e.g. 1,2,4,8)", f)
		}
		procs = append(procs, n)
	}
	return procs, nil
}

// churnOnce drives a fresh engine — or, when shards > 0, a fresh
// multi-shard coordinator — over the event schedule synchronously and
// returns the wall time of the flushed loop plus the final merged stats
// (a single engine's stats are lifted into the merged shape).
func churnOnce(sys *rbpc.System, events []failure.Event, shards int) (time.Duration, shard.Stats, error) {
	var fail, repair func(graph.EdgeID)
	var flush func()
	var scrape func() shard.Stats
	if shards > 0 {
		c, err := shard.New(sys.Export(), shard.Config{Shards: shards})
		if err != nil {
			return 0, shard.Stats{}, fmt.Errorf("shard coordinator: %w", err)
		}
		defer c.Close()
		fail, repair, flush, scrape = c.Fail, c.Repair, c.Flush, c.Stats
	} else {
		eng, err := engine.New(sys.Export(), engine.Config{})
		if err != nil {
			return 0, shard.Stats{}, fmt.Errorf("engine: %w", err)
		}
		defer eng.Close()
		fail, repair, flush = eng.Fail, eng.Repair, eng.Flush
		scrape = func() shard.Stats {
			st := eng.Stats()
			return shard.Stats{
				Shards: 1, Epoch: st.Epoch, Epochs: st.Epochs,
				PlanCacheHits: st.PlanCacheHits, PlanCacheMiss: st.PlanCacheMiss,
				RowBytes: st.RowBytes, DenseRowBytes: st.DenseRowBytes,
				EpochBuild: st.EpochBuild, Incremental: st.Incremental,
			}
		}
	}
	// Retire setup garbage before the clock starts: marking the
	// few-hundred-MB provisioned heap takes on the order of a second at one
	// P, and letting that cycle land mid-loop would charge setup's GC debt
	// to whichever build stage it interrupts.
	runtime.GC()
	start := time.Now()
	for _, ev := range events {
		if ev.Repair {
			repair(ev.Edge)
		} else {
			fail(ev.Edge)
		}
		flush()
	}
	elapsed := time.Since(start)
	return elapsed, scrape(), nil
}

// durPct returns the p-th percentile of a sorted duration slice.
func durPct(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(float64(len(sorted)-1) * p / 100)
	return sorted[i]
}

// runProcChurn drives the identical schedule through a forked worker
// fleet: one burst broadcast plus one cross-process flush barrier per
// event. The fleet rebuilds the same AS provision from (scale, seed)
// alone; the coordinator's stats scrape merges the workers' epoch-build
// percentiles over the wire.
func runProcChurn(out *os.File, sys *rbpc.System, events []failure.Event, scale float64, seed int64, hotSources, procs int, inproc time.Duration) (*processModeChurn, error) {
	wo := shardrpc.WorkerOpts{
		Topology:   "as",
		Scale:      scale,
		Seed:       seed,
		HotSources: hotSources,
		Shards:     procs,
	}
	var coordPtr atomic.Pointer[shardrpc.Coordinator]
	fleet, err := shardrpc.NewFleet(wo, func(i int) {
		if c := coordPtr.Load(); c != nil {
			if err := c.Reattach(i); err != nil {
				fmt.Fprintf(os.Stderr, "rbpc-bench: reattach worker %d: %v\n", i, err)
			}
		}
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	defer fleet.Close()
	attachStart := time.Now()
	coord, err := shardrpc.NewCoordinator(sys.Export(), shardrpc.Config{
		Shards:     procs,
		Dial:       fleet.Dial,
		DialBudget: 5 * time.Minute, // workers re-provision before listening
	})
	if err != nil {
		return nil, fmt.Errorf("coordinator: %w", err)
	}
	defer coord.Close()
	coordPtr.Store(coord)
	fmt.Fprintf(out, "process mode: %d workers forked and attached in %v\n",
		procs, time.Since(attachStart).Round(time.Millisecond))

	runtime.GC()
	flushes := make([]time.Duration, 0, len(events))
	start := time.Now()
	for _, ev := range events {
		if ev.Repair {
			coord.Repair(ev.Edge)
		} else {
			coord.Fail(ev.Edge)
		}
		f0 := time.Now()
		coord.Flush()
		flushes = append(flushes, time.Since(f0))
	}
	elapsed := time.Since(start)
	st := coord.Stats()
	sort.Slice(flushes, func(i, j int) bool { return flushes[i] < flushes[j] })
	rec := &processModeChurn{
		ShardProcs:    procs,
		Seconds:       elapsed.Seconds(),
		InprocSeconds: inproc.Seconds(),
		Epochs:        st.Epochs,
		BuildP50Secs:  st.EpochBuild.P50.Seconds(),
		BuildP99Secs:  st.EpochBuild.P99.Seconds(),
		FlushP50Secs:  durPct(flushes, 50).Seconds(),
		FlushP99Secs:  durPct(flushes, 99).Seconds(),
		TornFrames:    coord.Torn(),
	}
	fmt.Fprintf(out, "process mode: %v total vs %v in-process; flush barrier p50 %v p99 %v; build p99 %v; %d torn frames\n",
		elapsed.Round(time.Millisecond), inproc.Round(time.Millisecond),
		durPct(flushes, 50), durPct(flushes, 99), st.EpochBuild.P99, coord.Torn())
	return rec, nil
}

// engineProbe adapts a bare engine to the prober's backend surface.
type engineProbe struct{ e *engine.Engine }

func (p engineProbe) Query(src, dst graph.NodeID) engine.Result { return p.e.Query(src, dst) }
func (p engineProbe) AffectedPairs(ed graph.EdgeID) []graph.NodePair {
	return p.e.AffectedPairs(ed)
}
func (p engineProbe) RecordRestore(_ graph.NodeID, d time.Duration) { p.e.RecordRestore(d) }

// runSchemeComparison re-runs the identical churn schedule once per
// restoration scheme on a fresh single engine, timing every failure's
// restoration with the shared prober. The failure-detection and per-hop
// flood delays are fixed so hybrid's switchover horizon is the same
// across runs.
func runSchemeComparison(out *os.File, sys *rbpc.System, events []failure.Event) ([]schemeChurnEntry, error) {
	flood := engine.FloodConfig{Detect: 2 * time.Millisecond, PerHop: 100 * time.Microsecond}
	var recs []schemeChurnEntry
	for _, sch := range engine.Schemes() {
		eng, err := engine.New(sys.Export(), engine.Config{Scheme: sch, Flood: flood})
		if err != nil {
			return nil, fmt.Errorf("engine (%s): %w", sch, err)
		}
		runtime.GC()
		for _, ev := range events {
			if ev.Repair {
				eng.Repair(ev.Edge)
				eng.Flush()
				continue
			}
			t0 := time.Now()
			eng.Fail(ev.Edge)
			probe.Restore(engineProbe{eng}, sch, ev.Edge, t0)
			eng.Flush()
		}
		eng.Drain()
		st := eng.Stats()
		eng.Close()
		recs = append(recs, schemeChurnEntry{
			Scheme:            sch.String(),
			RestoreSamples:    st.Restore.Count,
			RestoreP50Secs:    st.Restore.P50.Seconds(),
			RestoreP99Secs:    st.Restore.P99.Seconds(),
			RestoreMaxSecs:    st.Restore.Max.Seconds(),
			LocalBuildP50Secs: st.LocalBuild.P50.Seconds(),
			LocalBuildP99Secs: st.LocalBuild.P99.Seconds(),
			StretchMean:       st.Stretch.Mean,
			DetourHopsMean:    st.DetourHops.Mean,
			LocalPairs:        st.LocalPairs,
			LocalUnrestorable: st.LocalUnrestorable,
			Converged:         st.Converged,
		})
		fmt.Fprintf(out, "scheme %-6s: restore p50 %v  p99 %v (%d samples); stretch mean %.0f permille; %d local pairs (%d unrestorable); %d converged\n",
			sch, st.Restore.P50, st.Restore.P99, st.Restore.Count,
			st.Stretch.Mean, st.LocalPairs, st.LocalUnrestorable, st.Converged)
	}
	var hybrid, local *schemeChurnEntry
	for i := range recs {
		switch recs[i].Scheme {
		case engine.SchemeHybrid.String():
			hybrid = &recs[i]
		case engine.SchemeLocal.String():
			local = &recs[i]
		}
	}
	if hybrid != nil && local != nil {
		verdict := "<="
		if hybrid.RestoreP50Secs > local.RestoreP50Secs {
			verdict = ">"
		}
		fmt.Fprintf(out, "headline: hybrid restore p50 %.3fms %s local end-route %.3fms at equal churn\n",
			hybrid.RestoreP50Secs*1e3, verdict, local.RestoreP50Secs*1e3)
	}
	return recs, nil
}

// runEngineChurn provisions the AS stand-in at the given scale, drives the
// online engine through a seeded churn schedule synchronously (fail/repair
// + flush per event), and reports where the epoch-build time went. It
// returns an error instead of exiting so -compare can still run.
// The recorded full_scale provenance derives from the scale actually
// churned (-engine-scale 1.0 is the paper's AS size), not the -full flag.
func runEngineChurn(out *os.File, dir string, scale float64, steps, maxDown int, seed int64, sweep []int, shards, hotSources int, shardSweep []int, shardProcs int) error {
	g := topology.PaperAS(seed, scale)
	fmt.Fprintf(out, "engine churn: AS stand-in, %d nodes, %d links, %d events (max %d down)\n",
		g.Order(), g.Size(), steps, maxDown)

	rcfg := rbpc.Config{EdgeLSPs: true}
	if hotSources > 0 && hotSources < g.Order() {
		srcs := make([]graph.NodeID, hotSources)
		for i := range srcs {
			srcs[i] = graph.NodeID(i)
		}
		rcfg.Sources = srcs
		fmt.Fprintf(out, "hot set: %d of %d sources\n", hotSources, g.Order())
	}

	t := time.Now()
	sys, err := rbpc.NewSystem(g, rcfg)
	if err != nil {
		return fmt.Errorf("provision: %w", err)
	}
	fmt.Fprintf(out, "provisioned in %v\n", time.Since(t).Round(time.Millisecond))

	events := failure.ChurnSchedule(g, steps, maxDown, rand.New(rand.NewSource(seed)))
	elapsed, st, err := churnOnce(sys, events, shards)
	if err != nil {
		return err
	}

	// The sweep re-runs the identical schedule on a fresh engine per
	// GOMAXPROCS value, restoring the ambient setting afterwards.
	var sweepRecs []engineSweepEntry
	if len(sweep) > 0 {
		ambient := runtime.GOMAXPROCS(0)
		for _, procs := range sweep {
			runtime.GOMAXPROCS(procs)
			sElapsed, sSt, err := churnOnce(sys, events, shards)
			if err != nil {
				runtime.GOMAXPROCS(ambient)
				return err
			}
			sInc := sSt.Incremental
			sweepRecs = append(sweepRecs, engineSweepEntry{
				MaxProcs:         procs,
				Seconds:          sElapsed.Seconds(),
				BuildP50Secs:     sSt.EpochBuild.P50.Seconds(),
				BuildP99Secs:     sSt.EpochBuild.P99.Seconds(),
				StageSolveSec:    time.Duration(sInc.SolveNanos).Seconds(),
				StageAssembleSec: time.Duration(sInc.AssembleNanos).Seconds(),
			})
			fmt.Fprintf(out, "sweep GOMAXPROCS=%d: %v total (build p50 %v, p99 %v; solve %v, assemble %v)\n",
				procs, sElapsed.Round(time.Millisecond), sSt.EpochBuild.P50, sSt.EpochBuild.P99,
				time.Duration(sInc.SolveNanos), time.Duration(sInc.AssembleNanos))
		}
		runtime.GOMAXPROCS(ambient)
	}

	// Shard-count sweep: the identical schedule on a fresh coordinator
	// per shard count.
	var shardSweepRecs []engineShardSweepEntry
	for _, count := range shardSweep {
		sElapsed, sSt, err := churnOnce(sys, events, count)
		if err != nil {
			return err
		}
		shardSweepRecs = append(shardSweepRecs, engineShardSweepEntry{
			Shards:       count,
			Seconds:      sElapsed.Seconds(),
			BuildP50Secs: sSt.EpochBuild.P50.Seconds(),
			BuildP99Secs: sSt.EpochBuild.P99.Seconds(),
			PlanRowBytes: sSt.RowBytes,
		})
		fmt.Fprintf(out, "sweep shards=%d: %v total (build p50 %v, p99 %v; resident rows %d bytes)\n",
			count, sElapsed.Round(time.Millisecond), sSt.EpochBuild.P50, sSt.EpochBuild.P99, sSt.RowBytes)
	}
	// Process-mode stage: the identical schedule through a forked worker
	// fleet over the wire transport.
	var procRec *processModeChurn
	if shardProcs > 0 {
		procRec, err = runProcChurn(out, sys, events, scale, seed, hotSources, shardProcs, elapsed)
		if err != nil {
			return err
		}
	}
	// Four-way restoration-scheme comparison over the same schedule —
	// time-to-restore per scheme is the headline of the whole stage.
	fmt.Fprintln(out, "scheme comparison (same schedule, fresh engine per scheme):")
	schemeRecs, err := runSchemeComparison(out, sys, events)
	if err != nil {
		return err
	}

	inc := st.Incremental
	hitRate := 0.0
	if st.PlanCacheHits+st.PlanCacheMiss > 0 {
		hitRate = float64(st.PlanCacheHits) / float64(st.PlanCacheHits+st.PlanCacheMiss)
	}
	fmt.Fprintf(out, "%d epochs in %v (build p50 %v, p99 %v), plan cache hit rate %.2f\n",
		st.Epochs, elapsed.Round(time.Millisecond), st.EpochBuild.P50, st.EpochBuild.P99, hitRate)
	fmt.Fprintf(out, "incremental: %d rows reused / %d recomputed (%d entering, %d leaving, %d stale, %d repair-improved), %d trees adopted\n",
		inc.PairsReused, inc.PairsRecomputed, inc.Entering, inc.Leaving, inc.StaleRoutes, inc.RepairImproved, inc.TreesAdopted)
	fmt.Fprintf(out, "build stages: affected %v  solve %v  resolve %v  assemble %v\n",
		time.Duration(inc.AffectedNanos), time.Duration(inc.SolveNanos),
		time.Duration(inc.ResolveNanos), time.Duration(inc.AssembleNanos))
	if shards > 0 {
		ratio := 0.0
		if st.RowBytes > 0 {
			ratio = float64(st.DenseRowBytes) / float64(st.RowBytes)
		}
		fmt.Fprintf(out, "shards: %d; resident rows %d bytes vs dense %d (%.1fx)\n",
			st.Shards, st.RowBytes, st.DenseRowBytes, ratio)
	}

	if dir == "" {
		return nil
	}
	rec := engineChurnRecord{
		Name:      "engine_churn",
		Seconds:   elapsed.Seconds(),
		Seed:      seed,
		FullScale: scale >= 1.0,
		Scale:     scale,
		MaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion: runtime.Version(),

		Nodes:  g.Order(),
		Links:  g.Size(),
		Steps:  steps,
		Epochs: st.Epochs,

		BuildP50Secs: st.EpochBuild.P50.Seconds(),
		BuildP99Secs: st.EpochBuild.P99.Seconds(),
		CacheHitRate: hitRate,

		Shards:        st.Shards,
		HotSources:    hotSources,
		PlanRowBytes:  st.RowBytes,
		DenseRowBytes: st.DenseRowBytes,

		RowsReused:       inc.PairsReused,
		RowsRecomputed:   inc.PairsRecomputed,
		AffectedEntering: inc.Entering,
		AffectedLeaving:  inc.Leaving,
		StaleRoutes:      inc.StaleRoutes,
		RepairImproved:   inc.RepairImproved,
		TreesAdopted:     inc.TreesAdopted,
		StageAffectedSec: time.Duration(inc.AffectedNanos).Seconds(),
		StageSolveSec:    time.Duration(inc.SolveNanos).Seconds(),
		StageResolveSec:  time.Duration(inc.ResolveNanos).Seconds(),
		StageAssembleSec: time.Duration(inc.AssembleNanos).Seconds(),

		Schemes:     schemeRecs,
		Sweep:       sweepRecs,
		ShardSweep:  shardSweepRecs,
		ProcessMode: procRec,
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal bench record: %w", err)
	}
	path := filepath.Join(dir, "BENCH_engine_churn.json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write bench record: %w", err)
	}
	fmt.Fprintf(out, "wrote %s\n", path)
	return nil
}
