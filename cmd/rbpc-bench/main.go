// Command rbpc-bench regenerates the paper's evaluation tables and
// figures on the synthetic stand-in topologies.
//
// Usage:
//
//	rbpc-bench [-table 1|2|3] [-figure 10] [-all] [-full] [-seed N] [-max-edges N]
//
// By default the big stand-ins are scaled down for quick runs; -full (or
// RBPC_FULL=1) builds them at the paper's sizes (slow: full Table 2 on
// the 40k-node Internet graph runs hundreds of Dijkstras).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"rbpc"
	"rbpc/internal/shardrpc"
)

// benchRecord is the machine-readable timing of one pipeline stage,
// written as BENCH_<name>.json so perf trajectories can be tracked across
// commits by any tooling that can read JSON.
type benchRecord struct {
	Name      string  `json:"name"`
	Seconds   float64 `json:"seconds"`
	Seed      int64   `json:"seed"`
	FullScale bool    `json:"full_scale"`
	MaxProcs  int     `json:"gomaxprocs"`
	GoVersion string  `json:"go_version"`
}

// benchWriter accumulates stage timings and, when enabled with a target
// directory, persists each as its own BENCH_*.json file.
type benchWriter struct {
	dir  string
	seed int64
	full bool
}

func (b benchWriter) record(name string, d time.Duration) {
	if b.dir == "" {
		return
	}
	rec := benchRecord{
		Name:      name,
		Seconds:   d.Seconds(),
		Seed:      b.seed,
		FullScale: b.full,
		MaxProcs:  runtime.GOMAXPROCS(0),
		GoVersion: runtime.Version(),
	}
	path := filepath.Join(b.dir, "BENCH_"+name+".json")
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbpc-bench: marshal bench record:", err)
		return
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "rbpc-bench: write bench record:", err)
	}
}

func main() {
	table := flag.Int("table", 0, "regenerate a table (1, 2 or 3)")
	figure := flag.Int("figure", 0, "regenerate a figure (10)")
	ablations := flag.Bool("ablations", false, "run the k-backup baseline comparison")
	all := flag.Bool("all", false, "regenerate every table and figure")
	full := flag.Bool("full", false, "build topologies at full paper scale")
	seed := flag.Int64("seed", 1, "random seed for topologies and sampling")
	maxEdges := flag.Int("max-edges", 20000, "edge sample cap for table 3 (0 = all edges)")
	jsonPath := flag.String("json", "", "also write all computed results as JSON to this file")
	benchDir := flag.String("bench-dir", "", "write per-stage timings as BENCH_*.json files into this directory")
	engineRun := flag.Bool("engine", false, "benchmark the incremental epoch builder under churn (writes BENCH_engine_churn.json)")
	engineScale := flag.Float64("engine-scale", 0.1, "AS stand-in scale for the -engine churn benchmark")
	engineSteps := flag.Int("engine-steps", 40, "churn events for the -engine benchmark")
	engineMaxDown := flag.Int("engine-max-down", 4, "concurrently-down link bound for the -engine benchmark")
	engineSweep := flag.String("engine-sweep", "", "comma-separated GOMAXPROCS values to additionally run the -engine churn benchmark at (e.g. 1,2,4,8)")
	engineShards := flag.Int("engine-shards", 0, "run the -engine churn benchmark through the multi-shard coordinator with N shards (0 = single engine)")
	engineHot := flag.Int("engine-hot-sources", 0, "provision only the first N sources for the -engine benchmark (0 = all)")
	engineShardSweep := flag.String("engine-shard-sweep", "", "comma-separated shard counts to additionally run the -engine churn benchmark at (e.g. 1,2,4,8)")
	engineShardProcs := flag.Int("engine-shard-procs", 0, "additionally run the -engine churn benchmark through N forked worker processes over the wire transport")
	workerSpec := flag.String("worker", "", "run as a shard worker process with this spec (internal; set by -engine-shard-procs)")
	compare := flag.String("compare", "", "compare an old BENCH_*.json against the current record of the same name and print deltas")
	compareFailPct := flag.Float64("compare-fail-pct", 0, "with -compare: exit non-zero if a gated stage metric regressed by more than this percentage (0 = report only)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark run to this file")
	flag.Parse()

	if *workerSpec != "" {
		// Worker mode: this process is one shard of a fleet forked by
		// -engine-shard-procs. It serves its socket until killed.
		wo, err := shardrpc.ParseWorkerOpts(*workerSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbpc-bench:", err)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "rbpc-bench: worker:", shardrpc.RunWorker(wo))
		os.Exit(1)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbpc-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "rbpc-bench:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if !*all && *table == 0 && *figure == 0 && !*ablations && !*engineRun && *compare == "" {
		*all = true
	}

	sc := rbpc.EvalScaleFromEnv()
	if *full {
		sc = rbpc.FullEvalScale()
	}
	sc.Seed = *seed

	fullScale := *full || os.Getenv("RBPC_FULL") == "1"
	bench := benchWriter{dir: *benchDir, seed: *seed, full: fullScale}

	if *engineRun {
		sweep, err := parseProcsList(*engineSweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbpc-bench:", err)
			os.Exit(2)
		}
		shardSweep, err := parseProcsList(*engineShardSweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbpc-bench:", err)
			os.Exit(2)
		}
		fmt.Println("=== Engine: incremental epoch builds under churn (AS stand-in) ===")
		if err := runEngineChurn(os.Stdout, *benchDir, *engineScale, *engineSteps, *engineMaxDown, *seed, sweep, *engineShards, *engineHot, shardSweep, *engineShardProcs); err != nil {
			fmt.Fprintln(os.Stderr, "rbpc-bench: engine churn:", err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *compare != "" {
		if err := runCompare(os.Stdout, *compare, *benchDir, *compareFailPct); err != nil {
			fmt.Fprintln(os.Stderr, "rbpc-bench: compare:", err)
			os.Exit(1)
		}
	}
	if !*all && *table == 0 && *figure == 0 && !*ablations {
		return
	}

	fmt.Printf("Building evaluation topologies (seed=%d, AS scale=%.3f, Internet scale=%.3f)...\n",
		sc.Seed, sc.ASScale, sc.InternetScale)
	start := time.Now()
	nets := rbpc.EvalNetworks(sc)
	fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Millisecond))
	bench.record("build", time.Since(start))

	out := os.Stdout
	results := rbpc.EvalResults{Seed: *seed, FullScale: fullScale}
	if *all || *table == 1 {
		fmt.Println("=== Table 1: networks used in this article ===")
		rbpc.RunTable1(out, nets)
		fmt.Println()
	}
	if *all || *table == 2 {
		fmt.Println("=== Table 2: restoration by concatenation of basic LSPs ===")
		t := time.Now()
		results.Table2 = rbpc.RunTable2(out, nets, *seed)
		fmt.Printf("\n(table 2 computed in %v)\n\n", time.Since(t).Round(time.Millisecond))
		bench.record("table2", time.Since(t))
	}
	if *all || *table == 3 {
		fmt.Println("=== Table 3: length of the bypass of an edge ===")
		t := time.Now()
		results.Table3 = rbpc.RunTable3(out, nets, *maxEdges, *seed)
		fmt.Printf("\n(table 3 computed in %v)\n\n", time.Since(t).Round(time.Millisecond))
		bench.record("table3", time.Since(t))
	}
	if *all || *figure == 10 {
		fmt.Println("=== Figure 10: restoration overhead of local RBPC (weighted ISP) ===")
		t := time.Now()
		fig := rbpc.RunFigure10(out, nets[0], *seed)
		results.Figure10 = &fig
		fmt.Printf("\n(figure 10 computed in %v)\n\n", time.Since(t).Round(time.Millisecond))
		bench.record("figure10", time.Since(t))
	}
	if *all || *ablations {
		fmt.Println("=== Ablation: RBPC vs pre-established k-backup paths (weighted ISP) ===")
		fmt.Println("(RBPC restores 100% of connected pairs at optimal cost with one basic LSP per pair)")
		t := time.Now()
		results.KBackup = rbpc.RunKBackupComparison(out, nets[0], []int{2, 3}, *seed)
		fmt.Printf("\n(k-backup ablation computed in %v)\n\n", time.Since(t).Round(time.Millisecond))

		fmt.Println("=== Extension: the k+1 bound under asymmetric weights (directed ISP) ===")
		fmt.Println("(the theorems cover symmetric weights; traffic engineering may assign asymmetric ones)")
		t = time.Now()
		results.Asym = rbpc.RunAsymmetry(out, nets[0], []int{0, 1, 2, 4}, *seed)
		fmt.Printf("\n(asymmetry extension computed in %v)\n\n", time.Since(t).Round(time.Millisecond))

		fmt.Println("=== Extension: restoration latency, RBPC vs LDP re-signaling ===")
		t = time.Now()
		small := rbpc.EvalNetwork{Name: "Waxman-24", G: rbpc.NewWaxman(24, 0.7, 0.4, *seed), Trials: 0}
		if timing, err := rbpc.RunTiming(out, small, 20, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "timing:", err)
		} else {
			results.Timing = &timing
		}
		fmt.Printf("\n(timing extension computed in %v)\n\n", time.Since(t).Round(time.Millisecond))

		fmt.Println("=== Extension: technology trade-off (concatenation vs re-establishment) ===")
		t = time.Now()
		results.Tradeoff = rbpc.RunTradeoff(out, nets[0], *seed)
		fmt.Printf("\n(trade-off computed in %v)\n", time.Since(t).Round(time.Millisecond))
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbpc-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := results.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "rbpc-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("\nresults written to %s\n", *jsonPath)
	}
}
