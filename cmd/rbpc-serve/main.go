// Command rbpc-serve runs the online restoration engine under load: it
// provisions an RBPC system over a chosen topology, hands it to
// internal/engine, and drives it with an open-loop query generator while a
// failure injector walks a churn schedule. At the end it prints a latency
// and epoch report and (with -bench-dir) writes BENCH_engine.json in the
// same stage-timing format rbpc-bench emits, extended with serving
// metrics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rbpc/internal/engine"
	"rbpc/internal/failure"
	"rbpc/internal/graph"
	"rbpc/internal/probe"
	"rbpc/internal/rbpc"
	"rbpc/internal/shard"
	"rbpc/internal/shardrpc"
	"rbpc/internal/topology"
)

// backend abstracts the system under load: a single engine, or the
// multi-shard coordinator when -shards > 0. Both expose the same
// fan-in/fan-out surface the window driver needs.
type backend interface {
	Fail(e graph.EdgeID)
	Repair(e graph.EdgeID)
	SubmitBatch(pairs []rbpc.Pair) int
	Flush()
	// Drain blocks until every accepted query has been answered — the
	// scrape after it covers the full window, no residual queue.
	Drain()
	Close()
	LinksDown() int
	Scrape() shard.Stats
	// Query/AffectedPairs/RecordRestore are the time-to-restore prober's
	// surface: synchronous reads of the serving snapshot plus the sink for
	// observed failure-to-delivery wall-clock samples.
	Query(src, dst graph.NodeID) engine.Result
	AffectedPairs(e graph.EdgeID) []graph.NodePair
	RecordRestore(src graph.NodeID, d time.Duration)
}

type engineBackend struct{ e *engine.Engine }

func (b engineBackend) Fail(e graph.EdgeID)               { b.e.Fail(e) }
func (b engineBackend) Repair(e graph.EdgeID)             { b.e.Repair(e) }
func (b engineBackend) SubmitBatch(pairs []rbpc.Pair) int { return b.e.SubmitBatch(pairs) }
func (b engineBackend) Flush()                            { b.e.Flush() }
func (b engineBackend) Drain()                            { b.e.Drain() }
func (b engineBackend) Close()                            { b.e.Close() }
func (b engineBackend) LinksDown() int                    { return len(b.e.Snapshot().Failed()) }

func (b engineBackend) Query(src, dst graph.NodeID) engine.Result { return b.e.Query(src, dst) }
func (b engineBackend) AffectedPairs(e graph.EdgeID) []graph.NodePair {
	return b.e.AffectedPairs(e)
}
func (b engineBackend) RecordRestore(_ graph.NodeID, d time.Duration) { b.e.RecordRestore(d) }

// Scrape lifts the single engine's stats into the merged shape so the
// report code has one spelling.
func (b engineBackend) Scrape() shard.Stats {
	st := b.e.Stats()
	return shard.Stats{
		Shards:        1,
		Epoch:         st.Epoch,
		Queries:       st.Queries,
		Unroutable:    st.Unroutable,
		Submitted:     st.Submitted,
		Dropped:       st.Dropped,
		QueueDepth:    st.QueueDepth,
		Epochs:        st.Epochs,
		PlanCacheHits: st.PlanCacheHits,
		PlanCacheMiss: st.PlanCacheMiss,
		OnDemandLSPs:  st.OnDemandLSPs,
		RowBytes:      st.RowBytes,
		DenseRowBytes: st.DenseRowBytes,
		QueryLatency:  st.QueryLatency,
		EpochBuild:    st.EpochBuild,

		Scheme:            st.Scheme,
		Restore:           st.Restore,
		LocalBuild:        st.LocalBuild,
		Stretch:           st.Stretch,
		DetourHops:        st.DetourHops,
		LocalPairs:        st.LocalPairs,
		LocalUnrestorable: st.LocalUnrestorable,
		Converged:         st.Converged,
		PendingTimers:     st.PendingTimers,

		Incremental: st.Incremental,
		PerShard:    []engine.Stats{st},
	}
}

type shardBackend struct{ c *shard.Coordinator }

func (b shardBackend) Fail(e graph.EdgeID)               { b.c.Fail(e) }
func (b shardBackend) Repair(e graph.EdgeID)             { b.c.Repair(e) }
func (b shardBackend) SubmitBatch(pairs []rbpc.Pair) int { return b.c.SubmitBatch(pairs) }
func (b shardBackend) Flush()                            { b.c.Flush() }
func (b shardBackend) Drain()                            { b.c.Drain() }
func (b shardBackend) Close()                            { b.c.Close() }
func (b shardBackend) LinksDown() int                    { return len(b.c.Shard(0).Snapshot().Failed()) }
func (b shardBackend) Scrape() shard.Stats               { return b.c.Stats() }

func (b shardBackend) Query(src, dst graph.NodeID) engine.Result { return b.c.Query(src, dst) }
func (b shardBackend) AffectedPairs(e graph.EdgeID) []graph.NodePair {
	return b.c.AffectedPairs(e)
}
func (b shardBackend) RecordRestore(src graph.NodeID, d time.Duration) { b.c.RecordRestore(src, d) }

// procBackend fronts the process-mode coordinator (-shard-procs): the
// same serving surface with every query a wire round trip. It also
// satisfies probe.ProbeBackend — the prober's delivery verdicts are
// computed inside the owning worker process, whose data plane the
// coordinator cannot walk locally.
type procBackend struct{ c *shardrpc.Coordinator }

func (b procBackend) Fail(e graph.EdgeID)               { b.c.Fail(e) }
func (b procBackend) Repair(e graph.EdgeID)             { b.c.Repair(e) }
func (b procBackend) SubmitBatch(pairs []rbpc.Pair) int { return b.c.SubmitBatch(pairs) }
func (b procBackend) Flush()                            { b.c.Flush() }
func (b procBackend) Drain()                            { b.c.Drain() }
func (b procBackend) Close()                            { b.c.Close() }
func (b procBackend) LinksDown() int                    { return b.c.LinksDown() }
func (b procBackend) Scrape() shard.Stats               { return b.c.Stats() }

func (b procBackend) Query(src, dst graph.NodeID) engine.Result { return b.c.Query(src, dst) }
func (b procBackend) AffectedPairs(e graph.EdgeID) []graph.NodePair {
	return b.c.AffectedPairs(e)
}
func (b procBackend) RecordRestore(src graph.NodeID, d time.Duration) { b.c.RecordRestore(src, d) }

func (b procBackend) ProbeQuery(src, dst graph.NodeID, ed graph.EdgeID) probe.ProbeResult {
	v := b.c.ProbeQuery(src, dst, ed)
	return probe.ProbeResult{FailedContains: v.FailedContains, Routable: v.Routable, Delivered: v.Delivered}
}

// engineBench is the BENCH_engine.json payload: the rbpc-bench stage
// record (name/seconds/seed/full_scale/gomaxprocs/go_version) plus the
// serving metrics this binary exists to measure.
type engineBench struct {
	Name      string  `json:"name"`
	Seconds   float64 `json:"seconds"`
	Seed      int64   `json:"seed"`
	FullScale bool    `json:"full_scale"`
	MaxProcs  int     `json:"gomaxprocs"`
	GoVersion string  `json:"go_version"`

	Topology  string  `json:"topology"`
	Nodes     int     `json:"nodes"`
	Links     int     `json:"links"`
	TargetQPS float64 `json:"target_qps"`

	Queries      int64   `json:"queries"`
	QPS          float64 `json:"qps"`
	Dropped      int64   `json:"dropped"`
	Unroutable   int64   `json:"unroutable"`
	P50Seconds   float64 `json:"p50_seconds"`
	P99Seconds   float64 `json:"p99_seconds"`
	MaxSeconds   float64 `json:"max_seconds"`
	Epochs       int64   `json:"epochs"`
	BuildP50Secs float64 `json:"epoch_build_p50_seconds"`
	BuildP99Secs float64 `json:"epoch_build_p99_seconds"`
	CacheHitRate float64 `json:"plan_cache_hit_rate"`
	OnDemandLSPs int64   `json:"on_demand_lsps"`
	ProvisionSec float64 `json:"provision_seconds"`

	// Restoration-scheme telemetry: the configured scheme, the observed
	// time-to-restore distribution (failure injection → delivering
	// restored answer, the comparison's headline metric), and the local
	// plan quality counters (zero under the source scheme).
	Scheme            string  `json:"scheme"`
	RestoreSamples    int64   `json:"restore_samples"`
	RestoreP50Secs    float64 `json:"restore_p50_seconds"`
	RestoreP99Secs    float64 `json:"restore_p99_seconds"`
	RestoreMaxSecs    float64 `json:"restore_max_seconds"`
	LocalBuildP50Secs float64 `json:"local_build_p50_seconds"`
	LocalBuildP99Secs float64 `json:"local_build_p99_seconds"`
	StretchMean       float64 `json:"stretch_mean_permille"`
	DetourHopsMean    float64 `json:"detour_hops_mean"`
	LocalPairs        int64   `json:"local_pairs"`
	LocalUnrestorable int64   `json:"local_unrestorable"`
	Converged         int64   `json:"converged_transitions"`

	// Sharding telemetry: shard count (1 = single engine), provisioned hot
	// sources (0 = all), resident vs dense routing-matrix bytes, and the
	// cold tier's counters.
	Shards        int   `json:"shards"`
	HotSources    int   `json:"hot_sources"`
	PlanRowBytes  int64 `json:"plan_row_bytes"`
	DenseRowBytes int64 `json:"dense_row_bytes"`
	ColdQueries   int64 `json:"cold_queries"`
	ColdShed      int64 `json:"cold_shed"`
	ColdPromoted  int64 `json:"cold_promotions"`

	// Incremental epoch-builder telemetry: how much of each epoch was
	// reused versus recomputed, and where the build time went.
	RowsReused       int64   `json:"rows_reused"`
	RowsRecomputed   int64   `json:"rows_recomputed"`
	AffectedEntering int64   `json:"affected_entering"`
	AffectedLeaving  int64   `json:"affected_leaving"`
	StaleRoutes      int64   `json:"stale_routes"`
	RepairImproved   int64   `json:"repair_improved"`
	TreesAdopted     int64   `json:"trees_adopted"`
	StageAffectedSec float64 `json:"stage_affected_seconds"`
	StageSolveSec    float64 `json:"stage_solve_seconds"`
	StageResolveSec  float64 `json:"stage_resolve_seconds"`
	StageAssembleSec float64 `json:"stage_assemble_seconds"`

	// Sweep holds one entry per -sweep GOMAXPROCS value, each a fresh
	// engine re-running the identical window.
	Sweep []serveSweepEntry `json:"gomaxprocs_sweep,omitempty"`
	// ShardSweep holds one entry per -shard-sweep shard count, each a
	// fresh coordinator re-running the identical window.
	ShardSweep []shardSweepEntry `json:"shard_sweep,omitempty"`
	// ProcessMode holds the -shard-procs stage: the identical window
	// re-served by forked worker processes over the wire transport.
	ProcessMode *processModeBench `json:"process_mode,omitempty"`
}

// processModeBench records the process-mode serving window next to the
// in-process baseline it is gated against (qps_ratio is the acceptance
// number: process-mode must hold >= 0.8 of in-process throughput).
type processModeBench struct {
	ShardProcs     int     `json:"shard_procs"`
	QPS            float64 `json:"qps"`
	Dropped        int64   `json:"dropped"`
	Unroutable     int64   `json:"unroutable"`
	P50Seconds     float64 `json:"p50_seconds"`
	P99Seconds     float64 `json:"p99_seconds"`
	MaxSeconds     float64 `json:"max_seconds"`
	BuildP99Secs   float64 `json:"epoch_build_p99_seconds"`
	RestoreSamples int64   `json:"restore_samples"`
	RestoreP99Secs float64 `json:"restore_p99_seconds"`
	InprocQPS      float64 `json:"inproc_qps"`
	QPSRatio       float64 `json:"qps_ratio"`
	ColdQueries    int64   `json:"cold_queries"`
	WorkerRestarts int64   `json:"worker_restarts"`
	TornFrames     int64   `json:"torn_frames"`
}

// serveSweepEntry is one GOMAXPROCS point of the serving sweep: the same
// open-loop window re-run on a fresh engine at a pinned processor count.
type serveSweepEntry struct {
	MaxProcs   int     `json:"gomaxprocs"`
	QPS        float64 `json:"qps"`
	Dropped    int64   `json:"dropped"`
	Unroutable int64   `json:"unroutable"`
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// shardSweepEntry is one shard-count point of the shard sweep.
type shardSweepEntry struct {
	Shards       int     `json:"shards"`
	QPS          float64 `json:"qps"`
	Dropped      int64   `json:"dropped"`
	Unroutable   int64   `json:"unroutable"`
	P50Seconds   float64 `json:"p50_seconds"`
	P99Seconds   float64 `json:"p99_seconds"`
	BuildP99Secs float64 `json:"epoch_build_p99_seconds"`
	PlanRowBytes int64   `json:"plan_row_bytes"`
}

// windowOpts parameterizes one measured serving window.
type windowOpts struct {
	qps          float64
	duration     time.Duration
	workers      int
	queue        int
	batch        int
	failEvery    time.Duration
	maxDown      int
	coalesce     time.Duration
	seed         int64
	shards       int // 0 = single engine
	planCacheMax int
	cold         shard.ColdConfig
	scheme       engine.Scheme
	flood        engine.FloodConfig
	// proc, when set, serves the window through the process-mode
	// coordinator instead of building an in-process backend (shards is
	// ignored; the coordinator's worker fleet is already running).
	proc *shardrpc.Coordinator
}

// windowResult is the scrape of one serving window after queue drain.
type windowResult struct {
	elapsed   time.Duration
	st        shard.Stats
	linksDown int
}

// runWindow builds a fresh backend over the provisioned system and drives
// it through one measured open-loop window: a churn injector walks the
// seeded schedule while generators submit query bursts on a fixed arrival
// schedule, never waiting for answers. Returns after the residual queue
// has drained so the scrape covers every accepted query.
func runWindow(g *graph.Graph, sys *rbpc.System, o windowOpts) (windowResult, error) {
	workers := o.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	ecfg := engine.Config{
		Workers:        workers,
		QueueDepth:     o.queue,
		CoalesceWindow: o.coalesce,
		PlanCacheCap:   o.planCacheMax,
		Scheme:         o.scheme,
		Flood:          o.flood,
		WarmOracle:     false, // serving reads rows, not the oracle
	}
	var eng backend
	switch {
	case o.proc != nil:
		eng = procBackend{o.proc}
	case o.shards > 0:
		// Per-shard workers/queue: the shards together get the configured
		// budget, not o.shards times it.
		ecfg.Workers = (workers + o.shards - 1) / o.shards
		if o.queue > 0 {
			ecfg.QueueDepth = (o.queue + o.shards - 1) / o.shards
		}
		c, err := shard.New(sys.Export(), shard.Config{Shards: o.shards, Engine: ecfg, Cold: o.cold})
		if err != nil {
			return windowResult{}, fmt.Errorf("shard coordinator: %w", err)
		}
		eng = shardBackend{c}
	default:
		e, err := engine.New(sys.Export(), ecfg)
		if err != nil {
			return windowResult{}, fmt.Errorf("engine: %w", err)
		}
		eng = engineBackend{e}
	}
	defer eng.Close()

	// Failure injector: one churn event per tick, schedule long enough to
	// outlast the window. Every failure also launches a time-to-restore
	// probe — the headline metric of the scheme comparison.
	stopChurn := make(chan struct{})
	churnDone := make(chan struct{})
	var probeWG sync.WaitGroup
	if o.failEvery > 0 {
		steps := int(o.duration / o.failEvery)
		events := failure.ChurnSchedule(g, steps+1, o.maxDown, rand.New(rand.NewSource(o.seed)))
		go func() {
			defer close(churnDone)
			tick := time.NewTicker(o.failEvery)
			defer tick.Stop()
			for _, ev := range events {
				select {
				case <-stopChurn:
					return
				case <-tick.C:
				}
				if ev.Repair {
					eng.Repair(ev.Edge)
					continue
				}
				t0 := time.Now()
				eng.Fail(ev.Edge)
				probeWG.Add(1)
				go func(ed graph.EdgeID) {
					defer probeWG.Done()
					// Backends whose data plane lives in another process
					// ship the whole restoration verdict over the wire.
					if pb, ok := eng.(probe.ProbeBackend); ok {
						probe.RestoreVia(pb, o.scheme, ed, t0)
					} else {
						probe.Restore(eng, o.scheme, ed, t0)
					}
				}(ev.Edge)
			}
		}()
	} else {
		close(churnDone)
	}

	// Open-loop load: generators submit on a fixed arrival schedule,
	// batching catch-up when the OS timer lags, and never waiting for
	// answers. Everything due at a wakeup goes out as one SubmitBatch —
	// one timestamp and one channel operation per burst — so generator
	// overhead stays flat as qps climbs. SubmitBatch sheds whole bursts
	// when the target shard is full.
	nGens := runtime.GOMAXPROCS(0) / 2
	if nGens < 1 {
		nGens = 1
	}
	perGen := o.qps / float64(nGens)
	interval := time.Duration(float64(time.Second) / perGen)
	genDone := make(chan struct{}, nGens)
	start := time.Now()
	deadline := start.Add(o.duration)
	n := g.Order()
	for gen := 0; gen < nGens; gen++ {
		go func(seed int64) {
			defer func() { genDone <- struct{}{} }()
			rng := rand.New(rand.NewSource(seed))
			sent := 0
			for {
				now := time.Now()
				if now.After(deadline) {
					return
				}
				due := int(now.Sub(start)/interval) + 1
				for sent < due {
					take := due - sent
					if take > o.batch {
						take = o.batch
					}
					pairs := make([]rbpc.Pair, 0, take)
					for i := 0; i < take; i++ {
						src := graph.NodeID(rng.Intn(n))
						dst := graph.NodeID(rng.Intn(n))
						if src == dst {
							continue
						}
						pairs = append(pairs, rbpc.Pair{Src: src, Dst: dst})
					}
					sent += take
					// The engine owns pairs from here; the next burst
					// allocates fresh.
					eng.SubmitBatch(pairs)
				}
				next := start.Add(time.Duration(sent) * interval)
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
			}
		}(o.seed + int64(gen) + 1000)
	}
	for gen := 0; gen < nGens; gen++ {
		<-genDone
	}
	close(stopChurn)
	<-churnDone
	probeWG.Wait()
	eng.Flush()
	elapsed := time.Since(start)
	// Drain is a real barrier over every worker queue — unlike the old
	// QueueDepth poll it cannot scrape between a dequeue and the answer,
	// so the metrics cover every accepted query.
	eng.Drain()

	return windowResult{
		elapsed:   elapsed,
		st:        eng.Scrape(),
		linksDown: eng.LinksDown(),
	}, nil
}

// parseProcsList parses a comma-separated GOMAXPROCS list ("1,2,4,8").
func parseProcsList(s string) ([]int, error) {
	var procs []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad GOMAXPROCS sweep value %q (want positive integers, e.g. 1,2,4,8)", f)
		}
		procs = append(procs, n)
	}
	return procs, nil
}

func main() {
	var (
		topo      = flag.String("topology", "as", "topology: as, isp, internet, or waxman")
		scale     = flag.Float64("scale", 0.1, "topology scale factor (as/internet/waxman)")
		seed      = flag.Int64("seed", 1, "deterministic seed for topology and churn")
		closure   = flag.Bool("closure", false, "provision the full subpath closure (quadratic; small topologies only)")
		qps       = flag.Float64("qps", 150_000, "target open-loop query rate")
		duration  = flag.Duration("duration", 3*time.Second, "measured serving window")
		workers   = flag.Int("workers", 0, "engine query workers (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 8192, "engine query queue depth (split across worker shards)")
		batch     = flag.Int("batch", 1024, "max queries per submitted burst")
		failEvery = flag.Duration("fail-every", 50*time.Millisecond, "interval between injected churn events (0 = no churn)")
		maxDown   = flag.Int("max-down", 3, "max links concurrently down during churn")
		coalesce  = flag.Duration("coalesce", time.Millisecond, "writer coalesce window for failure bursts")
		schemeStr = flag.String("scheme", "source", "restoration scheme: source, local, bypass, or hybrid")
		floodDet  = flag.Duration("flood-detect", 2*time.Millisecond, "modeled failure-detection delay before the link-state flood starts (hybrid switchover)")
		floodHop  = flag.Duration("flood-hop", 100*time.Microsecond, "modeled per-hop link-state flood propagation delay (hybrid switchover)")
		benchDir  = flag.String("bench-dir", "", "write BENCH_engine.json into this directory")
		sweep     = flag.String("sweep", "", "comma-separated GOMAXPROCS values to additionally run the serving window at (e.g. 1,2,4,8)")
		strict    = flag.Bool("strict", false, "exit non-zero if any query was dropped or answered unroutable (CI smoke gate)")

		shards     = flag.Int("shards", 0, "shard the pair space across N coordinator shards (0 = single engine)")
		shardSweep = flag.String("shard-sweep", "", "comma-separated shard counts to additionally run the window at (e.g. 1,2,4,8)")
		hotSources = flag.Int("hot-sources", 0, "provision only the first N sources (0 = all); other pairs answer on demand via the cold tier (needs -shards or -shard-procs)")
		planCache  = flag.Int("plan-cache-max", 0, "bound the per-engine failed-set plan cache to N plans, CLOCK-evicted (0 = unbounded)")

		shardProcs = flag.Int("shard-procs", 0, "additionally serve the window from N forked worker processes over the wire transport (runs the in-process window at -shards N first as the baseline)")
		workerSpec = flag.String("worker", "", "run as a shard worker process with this spec (internal; set by -shard-procs)")
		dialBudget = flag.Duration("dial-budget", 2*time.Minute, "total budget for attaching or reattaching one worker process, provisioning included")
		ackTimeout = flag.Duration("ack-timeout", 5*time.Second, "per-RPC round-trip timeout before a worker retry (then death) in process mode")
		killAfter  = flag.Duration("kill-worker-after", 0, "kill worker 0 this long into the process-mode window (crash-recovery demo; 0 = never)")

		coldWorkers = flag.Int("cold-workers", 0, "cold-tier solver pool size (0 = default)")
		coldQueue   = flag.Int("cold-queue", 0, "cold-tier admission queue depth; beyond it cold queries shed (0 = default)")
		coldCache   = flag.Int("cold-cache", 0, "cold-tier promoted-answer cache capacity (0 = default)")
		coldPromote = flag.Int("cold-promote-after", 0, "hits before a cold answer is promoted into the cache (0 = default)")
	)
	flag.Parse()
	if *workerSpec != "" {
		// Worker mode: this process is one shard of a fleet. It serves its
		// socket until the supervisor kills it.
		wo, err := shardrpc.ParseWorkerOpts(*workerSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbpc-serve:", err)
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "rbpc-serve: worker:", shardrpc.RunWorker(wo))
		os.Exit(1)
	}
	if *hotSources > 0 && *shards <= 0 && *shardProcs <= 0 {
		fmt.Fprintln(os.Stderr, "rbpc-serve: -hot-sources needs -shards or -shard-procs (the cold tier lives in the coordinator)")
		os.Exit(2)
	}
	if *shardProcs > 0 && (*shards > 0 || *shardSweep != "") {
		fmt.Fprintln(os.Stderr, "rbpc-serve: -shard-procs picks its own in-process baseline; drop -shards / -shard-sweep")
		os.Exit(2)
	}
	sch, err := engine.ParseScheme(*schemeStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbpc-serve:", err)
		os.Exit(2)
	}
	if sch != engine.SchemeSource && (*shards > 0 || *shardSweep != "" || *hotSources > 0 || *shardProcs > 0) {
		fmt.Fprintf(os.Stderr, "rbpc-serve: -scheme %s needs the single-engine path (-shards, -shard-sweep, -shard-procs, and -hot-sources serve the source scheme only)\n", sch)
		os.Exit(2)
	}

	g, err := topology.Build(*topo, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbpc-serve:", err)
		os.Exit(2)
	}
	fmt.Printf("topology %s: %d nodes, %d links\n", *topo, g.Order(), g.Size())
	if sch != engine.SchemeSource {
		fmt.Printf("restoration scheme: %s (flood detect %v, per-hop %v)\n", sch, *floodDet, *floodHop)
	}

	rcfg := rbpc.Config{SubpathClosure: *closure, EdgeLSPs: true}
	if *hotSources > 0 && *hotSources < g.Order() {
		// The hot set is the first N sources — deterministic, and on the
		// generated topologies node IDs carry no locality, so it behaves
		// like a uniform sample of the pair space.
		srcs := make([]graph.NodeID, *hotSources)
		for i := range srcs {
			srcs[i] = graph.NodeID(i)
		}
		rcfg.Sources = srcs
		fmt.Printf("hot set: %d of %d sources (cold pairs answer on demand)\n", *hotSources, g.Order())
	}

	fmt.Print("provisioning RBPC system... ")
	provStart := time.Now()
	sys, err := rbpc.NewSystem(g, rcfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbpc-serve: provision:", err)
		os.Exit(1)
	}
	provisionTime := time.Since(provStart)
	fmt.Printf("done in %v (%d LSPs)\n", provisionTime.Round(time.Millisecond), sys.Net().NumLSPs())

	opts := windowOpts{
		qps:          *qps,
		duration:     *duration,
		workers:      *workers,
		queue:        *queue,
		batch:        *batch,
		failEvery:    *failEvery,
		maxDown:      *maxDown,
		coalesce:     *coalesce,
		seed:         *seed,
		shards:       *shards,
		planCacheMax: *planCache,
		scheme:       sch,
		flood:        engine.FloodConfig{Detect: *floodDet, PerHop: *floodHop},
		cold: shard.ColdConfig{
			Workers:      *coldWorkers,
			Queue:        *coldQueue,
			CacheCap:     *coldCache,
			PromoteAfter: *coldPromote,
		},
	}
	if *shardProcs > 0 {
		// The main window is the in-process baseline the process-mode
		// stage is measured against: same shard count, same partition.
		opts.shards = *shardProcs
	}
	res, err := runWindow(g, sys, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbpc-serve:", err)
		os.Exit(1)
	}
	st := res.st
	elapsed := res.elapsed
	served := st.Queries
	achieved := float64(served) / elapsed.Seconds()
	hitRate := 0.0
	if st.PlanCacheHits+st.PlanCacheMiss > 0 {
		hitRate = float64(st.PlanCacheHits) / float64(st.PlanCacheHits+st.PlanCacheMiss)
	}

	fmt.Printf("\nserved %d queries in %v (%.0f qps, target %.0f; %d dropped)\n",
		served, elapsed.Round(time.Millisecond), achieved, *qps, st.Dropped)
	fmt.Printf("query latency: p50 %v  p99 %v  max %v\n",
		st.QueryLatency.P50, st.QueryLatency.P99, st.QueryLatency.Max)
	fmt.Printf("epochs: %d published (build p50 %v, p99 %v), plan cache hit rate %.2f, %d on-demand LSPs\n",
		st.Epochs, st.EpochBuild.P50, st.EpochBuild.P99, hitRate, st.OnDemandLSPs)
	fmt.Printf("unroutable answers: %d; final epoch %d with %d links down\n",
		st.Unroutable, st.Epoch, res.linksDown)
	if st.Restore.Count > 0 {
		fmt.Printf("time-to-restore (%s): %d samples, p50 %v  p99 %v  max %v\n",
			st.Scheme, st.Restore.Count, st.Restore.P50, st.Restore.P99, st.Restore.Max)
	}
	if st.Scheme != engine.SchemeSource {
		fmt.Printf("local plans: build p50 %v p99 %v; %d affected pairs (%d unrestorable); stretch mean %.0f permille; detour hops mean %.1f max %d; %d transitions converged\n",
			st.LocalBuild.P50, st.LocalBuild.P99, st.LocalPairs, st.LocalUnrestorable,
			st.Stretch.Mean, st.DetourHops.Mean, st.DetourHops.Max, st.Converged)
	}
	inc := st.Incremental
	fmt.Printf("incremental: %d rows reused / %d recomputed (%d entering, %d leaving, %d stale, %d repair-improved), %d trees adopted\n",
		inc.PairsReused, inc.PairsRecomputed, inc.Entering, inc.Leaving, inc.StaleRoutes, inc.RepairImproved, inc.TreesAdopted)
	fmt.Printf("build stages: affected %v  solve %v  resolve %v  assemble %v\n",
		time.Duration(inc.AffectedNanos), time.Duration(inc.SolveNanos),
		time.Duration(inc.ResolveNanos), time.Duration(inc.AssembleNanos))
	if *shards > 0 {
		ratio := 0.0
		if st.RowBytes > 0 {
			ratio = float64(st.DenseRowBytes) / float64(st.RowBytes)
		}
		fmt.Printf("shards: %d; resident rows %d bytes vs dense %d (%.1fx); cold: %d queries, %d solved, %d shed, %d promotions\n",
			st.Shards, st.RowBytes, st.DenseRowBytes, ratio,
			st.Cold.Queries, st.Cold.Solved, st.Cold.Shed, st.Cold.Promotions)
	}

	// GOMAXPROCS sweep: re-run the identical window on a fresh engine per
	// processor count, restoring the ambient setting afterwards.
	var sweepRecs []serveSweepEntry
	if *sweep != "" {
		procsList, err := parseProcsList(*sweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbpc-serve:", err)
			os.Exit(2)
		}
		ambient := runtime.GOMAXPROCS(0)
		for _, procs := range procsList {
			runtime.GOMAXPROCS(procs)
			sOpts := opts
			sOpts.workers = 0 // track the pinned GOMAXPROCS
			sres, err := runWindow(g, sys, sOpts)
			if err != nil {
				runtime.GOMAXPROCS(ambient)
				fmt.Fprintln(os.Stderr, "rbpc-serve: sweep:", err)
				os.Exit(1)
			}
			sQPS := float64(sres.st.Queries) / sres.elapsed.Seconds()
			sweepRecs = append(sweepRecs, serveSweepEntry{
				MaxProcs:   procs,
				QPS:        sQPS,
				Dropped:    sres.st.Dropped,
				Unroutable: sres.st.Unroutable,
				P50Seconds: sres.st.QueryLatency.P50.Seconds(),
				P99Seconds: sres.st.QueryLatency.P99.Seconds(),
			})
			fmt.Printf("sweep GOMAXPROCS=%d: %.0f qps (%d dropped, p50 %v, p99 %v)\n",
				procs, sQPS, sres.st.Dropped, sres.st.QueryLatency.P50, sres.st.QueryLatency.P99)
		}
		runtime.GOMAXPROCS(ambient)
	}

	// Shard-count sweep: the identical window on a fresh coordinator per
	// shard count (1 runs the coordinator too, isolating ring overhead).
	var shardSweepRecs []shardSweepEntry
	if *shardSweep != "" {
		counts, err := parseProcsList(*shardSweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbpc-serve:", err)
			os.Exit(2)
		}
		for _, count := range counts {
			sOpts := opts
			sOpts.shards = count
			sres, err := runWindow(g, sys, sOpts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rbpc-serve: shard sweep:", err)
				os.Exit(1)
			}
			sQPS := float64(sres.st.Queries) / sres.elapsed.Seconds()
			shardSweepRecs = append(shardSweepRecs, shardSweepEntry{
				Shards:       count,
				QPS:          sQPS,
				Dropped:      sres.st.Dropped,
				Unroutable:   sres.st.Unroutable,
				P50Seconds:   sres.st.QueryLatency.P50.Seconds(),
				P99Seconds:   sres.st.QueryLatency.P99.Seconds(),
				BuildP99Secs: sres.st.EpochBuild.P99.Seconds(),
				PlanRowBytes: sres.st.RowBytes,
			})
			fmt.Printf("sweep shards=%d: %.0f qps (%d dropped, p50 %v, p99 %v, build p99 %v)\n",
				count, sQPS, sres.st.Dropped, sres.st.QueryLatency.P50,
				sres.st.QueryLatency.P99, sres.st.EpochBuild.P99)
		}
	}

	// Process mode: fork the worker fleet (this same binary, -worker),
	// attach the wire coordinator, and re-run the identical window with
	// every query a round trip over the Unix-socket transport.
	var procRec *processModeBench
	var procStats shard.Stats
	if *shardProcs > 0 {
		effWorkers := *workers
		if effWorkers < 1 {
			effWorkers = runtime.GOMAXPROCS(0)
		}
		// Per-process budgets: the fleet together gets the machine's
		// worker/queue budget, mirroring the in-process per-shard split —
		// each worker process is also pinned to its share of the CPUs so
		// the baseline comparison is one machine vs the same machine.
		per := (effWorkers + *shardProcs - 1) / *shardProcs
		perQueue := 0
		if *queue > 0 {
			perQueue = (*queue + *shardProcs - 1) / *shardProcs
		}
		wo := shardrpc.WorkerOpts{
			Topology:     *topo,
			Scale:        *scale,
			Seed:         *seed,
			Closure:      *closure,
			HotSources:   *hotSources,
			Shards:       *shardProcs,
			MaxProcs:     per,
			Workers:      per,
			Queue:        perQueue,
			Coalesce:     *coalesce,
			PlanCacheMax: *planCache,
		}
		fmt.Printf("\nforking %d worker processes (GOMAXPROCS %d each)... ", *shardProcs, per)
		var coordPtr atomic.Pointer[shardrpc.Coordinator]
		fleet, err := shardrpc.NewFleet(wo, func(i int) {
			if c := coordPtr.Load(); c != nil {
				if err := c.Reattach(i); err != nil {
					fmt.Fprintf(os.Stderr, "rbpc-serve: reattach worker %d: %v\n", i, err)
				}
			}
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbpc-serve: fleet:", err)
			os.Exit(1)
		}
		defer fleet.Close()
		attachStart := time.Now()
		coord, err := shardrpc.NewCoordinator(sys.Export(), shardrpc.Config{
			Shards:     *shardProcs,
			Cold:       opts.cold,
			Dial:       fleet.Dial,
			DialBudget: *dialBudget,
			AckTimeout: *ackTimeout,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbpc-serve: coordinator:", err)
			os.Exit(1)
		}
		coordPtr.Store(coord)
		fmt.Printf("attached in %v\n", time.Since(attachStart).Round(time.Millisecond))
		if *killAfter > 0 {
			time.AfterFunc(*killAfter, func() {
				fmt.Printf("killing worker 0 (crash-recovery demo)\n")
				if err := fleet.Kill(0); err != nil {
					fmt.Fprintln(os.Stderr, "rbpc-serve: kill worker 0:", err)
				}
			})
		}
		pOpts := opts
		pOpts.shards = 0
		pOpts.proc = coord
		pres, err := runWindow(g, sys, pOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbpc-serve: process window:", err)
			os.Exit(1)
		}
		procStats = pres.st
		pQPS := float64(pres.st.Queries) / pres.elapsed.Seconds()
		ratio := 0.0
		if achieved > 0 {
			ratio = pQPS / achieved
		}
		fmt.Printf("process mode: %.0f qps over the wire vs %.0f in-process (%.2fx; %d dropped, p50 %v, p99 %v, build p99 %v)\n",
			pQPS, achieved, ratio, pres.st.Dropped,
			pres.st.QueryLatency.P50, pres.st.QueryLatency.P99, pres.st.EpochBuild.P99)
		fmt.Printf("process mode: %d cold queries, %d worker restarts, %d torn frames\n",
			pres.st.Cold.Queries, fleet.Restarts(), coord.Torn())
		if pres.st.Restore.Count > 0 {
			fmt.Printf("process mode time-to-restore: %d samples, p50 %v  p99 %v  max %v\n",
				pres.st.Restore.Count, pres.st.Restore.P50, pres.st.Restore.P99, pres.st.Restore.Max)
		}
		procRec = &processModeBench{
			ShardProcs:     *shardProcs,
			QPS:            pQPS,
			Dropped:        pres.st.Dropped,
			Unroutable:     pres.st.Unroutable,
			P50Seconds:     pres.st.QueryLatency.P50.Seconds(),
			P99Seconds:     pres.st.QueryLatency.P99.Seconds(),
			MaxSeconds:     pres.st.QueryLatency.Max.Seconds(),
			BuildP99Secs:   pres.st.EpochBuild.P99.Seconds(),
			RestoreSamples: pres.st.Restore.Count,
			RestoreP99Secs: pres.st.Restore.P99.Seconds(),
			InprocQPS:      achieved,
			QPSRatio:       ratio,
			ColdQueries:    pres.st.Cold.Queries,
			WorkerRestarts: fleet.Restarts(),
			TornFrames:     coord.Torn(),
		}
	}

	if *benchDir != "" {
		rec := engineBench{
			Name:      "engine",
			Seconds:   elapsed.Seconds(),
			Seed:      *seed,
			FullScale: *scale >= 1.0,
			MaxProcs:  runtime.GOMAXPROCS(0),
			GoVersion: runtime.Version(),

			Topology:  *topo,
			Nodes:     g.Order(),
			Links:     g.Size(),
			TargetQPS: *qps,

			Queries:      served,
			QPS:          achieved,
			Dropped:      st.Dropped,
			Unroutable:   st.Unroutable,
			P50Seconds:   st.QueryLatency.P50.Seconds(),
			P99Seconds:   st.QueryLatency.P99.Seconds(),
			MaxSeconds:   st.QueryLatency.Max.Seconds(),
			Epochs:       st.Epochs,
			BuildP50Secs: st.EpochBuild.P50.Seconds(),
			BuildP99Secs: st.EpochBuild.P99.Seconds(),
			CacheHitRate: hitRate,
			OnDemandLSPs: st.OnDemandLSPs,
			ProvisionSec: provisionTime.Seconds(),

			Scheme:            st.Scheme.String(),
			RestoreSamples:    st.Restore.Count,
			RestoreP50Secs:    st.Restore.P50.Seconds(),
			RestoreP99Secs:    st.Restore.P99.Seconds(),
			RestoreMaxSecs:    st.Restore.Max.Seconds(),
			LocalBuildP50Secs: st.LocalBuild.P50.Seconds(),
			LocalBuildP99Secs: st.LocalBuild.P99.Seconds(),
			StretchMean:       st.Stretch.Mean,
			DetourHopsMean:    st.DetourHops.Mean,
			LocalPairs:        st.LocalPairs,
			LocalUnrestorable: st.LocalUnrestorable,
			Converged:         st.Converged,

			Shards:        st.Shards,
			HotSources:    *hotSources,
			PlanRowBytes:  st.RowBytes,
			DenseRowBytes: st.DenseRowBytes,
			ColdQueries:   st.Cold.Queries,
			ColdShed:      st.Cold.Shed,
			ColdPromoted:  st.Cold.Promotions,

			RowsReused:       inc.PairsReused,
			RowsRecomputed:   inc.PairsRecomputed,
			AffectedEntering: inc.Entering,
			AffectedLeaving:  inc.Leaving,
			StaleRoutes:      inc.StaleRoutes,
			RepairImproved:   inc.RepairImproved,
			TreesAdopted:     inc.TreesAdopted,
			StageAffectedSec: time.Duration(inc.AffectedNanos).Seconds(),
			StageSolveSec:    time.Duration(inc.SolveNanos).Seconds(),
			StageResolveSec:  time.Duration(inc.ResolveNanos).Seconds(),
			StageAssembleSec: time.Duration(inc.AssembleNanos).Seconds(),

			Sweep:       sweepRecs,
			ShardSweep:  shardSweepRecs,
			ProcessMode: procRec,
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbpc-serve: marshal bench record:", err)
			os.Exit(1)
		}
		path := filepath.Join(*benchDir, "BENCH_engine.json")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "rbpc-serve: write bench record:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}

	if *strict && (st.Dropped > 0 || st.Unroutable > 0) {
		fmt.Fprintf(os.Stderr, "rbpc-serve: strict mode: %d dropped, %d unroutable\n", st.Dropped, st.Unroutable)
		os.Exit(1)
	}
	if *strict && *failEvery > 0 && st.Restore.Count == 0 {
		fmt.Fprintln(os.Stderr, "rbpc-serve: strict mode: churn ran but the prober recorded no time-to-restore samples")
		os.Exit(1)
	}
	if *strict && st.PendingTimers != 0 {
		fmt.Fprintf(os.Stderr, "rbpc-serve: strict mode: %d switchover timers still pending after drain\n", st.PendingTimers)
		os.Exit(1)
	}
	// The process-mode window is gated like the main one (the crash demo
	// is exempt: a killed worker legitimately sheds in-flight batches).
	if *strict && procRec != nil && *killAfter <= 0 && (procStats.Dropped > 0 || procStats.Unroutable > 0) {
		fmt.Fprintf(os.Stderr, "rbpc-serve: strict mode: process window: %d dropped, %d unroutable\n",
			procStats.Dropped, procStats.Unroutable)
		os.Exit(1)
	}
	if *strict && procRec != nil && *failEvery > 0 && procStats.Restore.Count == 0 {
		fmt.Fprintln(os.Stderr, "rbpc-serve: strict mode: process window recorded no time-to-restore samples")
		os.Exit(1)
	}
}
