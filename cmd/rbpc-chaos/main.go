// Command rbpc-chaos drives the deterministic fault-injection
// conformance harness (internal/chaos) against the online restoration
// engine.
//
// Hunt mode (default) generates seeded chaos schedules and runs each
// against the engine with the oracles armed. On the first violation the
// schedule is shrunk to a minimal reproduction, printed, optionally
// written as a corpus file, and the process exits 1:
//
//	rbpc-chaos -runs 50 -seed 1 -corpus failing.chaos
//
// Replay mode re-runs a corpus case byte-for-byte deterministically and
// exits 1 if it still violates an oracle:
//
//	rbpc-chaos -replay failing.chaos
//
// The -fault flag injects a deliberate engine defect (see
// engine.Faults), which is how the harness proves its own oracles work:
//
//	rbpc-chaos -fault stale-plan-on-repair
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rbpc/internal/chaos"
	"rbpc/internal/engine"
)

func main() {
	runs := flag.Int("runs", 20, "hunt: number of schedule seeds to try")
	seed := flag.Int64("seed", 1, "hunt: first schedule seed")
	nodes := flag.Int("nodes", 18, "hunt: Waxman topology size")
	topoSeed := flag.Int64("topo-seed", 1, "hunt: topology seed")
	steps := flag.Int("steps", 60, "hunt: churn events per schedule")
	maxDown := flag.Int("maxdown", 3, "hunt: max concurrently-down links")
	coalesce := flag.Duration("coalesce", 0, "engine coalescing window (hunt alternates 0 and 200us when unset)")
	faultName := flag.String("fault", "none", "inject an engine defect: none, stale-plan-on-repair, skip-fec-rewrite, drop-epoch")
	corpus := flag.String("corpus", "", "hunt: write the shrunk failing case to this file")
	replay := flag.String("replay", "", "replay a corpus case instead of hunting")
	flag.Parse()

	if *replay != "" {
		replayCase(*replay)
		return
	}

	fault, err := engine.ParseFault(*faultName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbpc-chaos:", err)
		os.Exit(2)
	}
	cfg := chaos.Config{
		Nodes:          *nodes,
		TopoSeed:       *topoSeed,
		Seed:           *seed,
		Steps:          *steps,
		MaxDown:        *maxDown,
		CoalesceWindow: *coalesce,
		Fault:          fault,
	}

	start := time.Now()
	c, v, err := chaos.Hunt(cfg, *runs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbpc-chaos:", err)
		os.Exit(2)
	}
	if v == nil {
		fmt.Printf("rbpc-chaos: %d runs clean (%d nodes, topo seed %d, seeds %d..%d, fault %s) in %v\n",
			*runs, *nodes, *topoSeed, *seed, *seed+int64(*runs)-1, fault, time.Since(start).Round(time.Millisecond))
		return
	}

	fmt.Fprintf(os.Stderr, "rbpc-chaos: ORACLE VIOLATION (schedule seed %d, fault %s)\n", c.Seed, c.Fault)
	fmt.Fprintf(os.Stderr, "  %v\n", v)
	fmt.Fprintf(os.Stderr, "shrunk schedule (%d steps):\n%s", len(c.Schedule), c.Schedule)
	if *corpus != "" {
		if err := chaos.SaveCase(*corpus, c); err != nil {
			fmt.Fprintln(os.Stderr, "rbpc-chaos: writing corpus:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "corpus written to %s (replay with: rbpc-chaos -replay %s)\n", *corpus, *corpus)
	}
	os.Exit(1)
}

func replayCase(path string) {
	c, err := chaos.LoadCase(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbpc-chaos:", err)
		os.Exit(2)
	}
	fmt.Printf("rbpc-chaos: replaying %s (%d nodes, topo seed %d, fault %s, %d steps)\n",
		path, c.Nodes, c.TopoSeed, c.Fault, len(c.Schedule))
	rep, err := c.Run()
	if err != nil {
		fmt.Fprintf(os.Stderr, "rbpc-chaos: REPRODUCED\n  %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("rbpc-chaos: clean — %d churn, %d queries, %d probes, %d epochs\n",
		rep.Churn, rep.Queries, rep.Probes, rep.Epochs)
}
