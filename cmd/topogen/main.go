// Command topogen generates evaluation topologies in the repository's
// edge-list format.
//
// Usage:
//
//	topogen -kind isp|as|internet|ring|grid|waxman|powerlaw [-n N] [-scale S] [-seed N] [-o file]
//
// The isp/as/internet kinds are the synthetic stand-ins for the paper's
// measured networks; the rest are classic families for experimentation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rbpc"
	"rbpc/internal/graph"
)

func main() {
	kind := flag.String("kind", "isp", "topology family: isp, as, internet, ring, grid, waxman, powerlaw")
	n := flag.Int("n", 100, "node count (ring, grid side, waxman, powerlaw)")
	m := flag.Int("m", 2, "attachment degree (powerlaw)")
	scale := flag.Float64("scale", 1.0, "size scale for as/internet stand-ins")
	seed := flag.Int64("seed", 1, "random seed")
	outPath := flag.String("o", "-", "output file (default stdout)")
	unweighted := flag.Bool("unweighted", false, "replace all weights with 1")
	flag.Parse()

	g, err := build(*kind, *n, *m, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
	if *unweighted {
		g = rbpc.UnweightedCopy(g)
	}

	var w io.Writer = os.Stdout
	if *outPath != "-" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topogen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := graph.Write(w, g); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
	s := graph.Summarize(g)
	fmt.Fprintf(os.Stderr, "generated %s: %d nodes, %d links, avg degree %.2f\n",
		*kind, s.Nodes, s.Links, s.AvgDegree)
}

func build(kind string, n, m int, scale float64, seed int64) (*rbpc.Graph, error) {
	switch kind {
	case "isp":
		return rbpc.NewISPTopology(seed), nil
	case "as":
		return rbpc.NewASTopology(seed, scale), nil
	case "internet":
		return rbpc.NewInternetTopology(seed, scale), nil
	case "ring":
		return rbpc.NewRing(n), nil
	case "grid":
		return rbpc.NewGrid(n, n), nil
	case "waxman":
		return rbpc.NewWaxman(n, 0.4, 0.3, seed), nil
	case "powerlaw":
		return rbpc.NewPowerLaw(n, m, seed), nil
	default:
		return nil, fmt.Errorf("unknown kind %q", kind)
	}
}
