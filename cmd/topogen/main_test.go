package main

import (
	"bytes"
	"testing"

	"rbpc/internal/graph"
)

func TestBuildKinds(t *testing.T) {
	cases := []struct {
		kind      string
		wantNodes int
	}{
		{"isp", 200},
		{"ring", 100},
		{"grid", 100 * 100},
		{"waxman", 100},
		{"powerlaw", 100},
	}
	for _, tc := range cases {
		g, err := build(tc.kind, 100, 2, 1.0, 1)
		if err != nil {
			t.Fatalf("%s: %v", tc.kind, err)
		}
		if g.Order() != tc.wantNodes {
			t.Errorf("%s: %d nodes, want %d", tc.kind, g.Order(), tc.wantNodes)
		}
	}
	if _, err := build("nope", 10, 2, 1, 1); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestBuildScaledStandIns(t *testing.T) {
	as, err := build("as", 0, 0, 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	if as.Order() < 60 {
		t.Errorf("as: %d nodes", as.Order())
	}
	inet, err := build("internet", 0, 0, 0.005, 1)
	if err != nil {
		t.Fatal(err)
	}
	if inet.Order() < 80 {
		t.Errorf("internet: %d nodes", inet.Order())
	}
}

func TestGeneratedOutputParses(t *testing.T) {
	g, err := build("isp", 0, 0, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graph.Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := graph.Read(&buf)
	if err != nil {
		t.Fatalf("generated topology does not parse: %v", err)
	}
	if back.Size() != g.Size() {
		t.Errorf("round trip lost edges: %d vs %d", back.Size(), g.Size())
	}
}
