package rbpc_test

import (
	"fmt"

	"rbpc"
)

// The headline theorem in action: after one failure, the new shortest
// path is a concatenation of at most two original shortest paths.
func ExampleNewRestorer() {
	g := rbpc.NewRing(6)
	e, _ := g.FindEdge(0, 1)

	base := rbpc.AllShortestPaths(g)
	r := rbpc.NewRestorer(base, rbpc.StrategyGreedy)
	plan, err := r.Restore(rbpc.FailEdges(g, e), 0, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println("components:", plan.PCLength())
	fmt.Println("backup hops:", plan.Backup.Hops())
	// Output:
	// components: 2
	// backup hops: 5
}

// Source-router RBPC on the MPLS plane: a failure is healed by FEC
// rewrites alone — ILM tables and signaling counters do not move.
func ExampleNewDeployment() {
	g := rbpc.NewComplete(4)
	dep, err := rbpc.NewDeployment(g, rbpc.DefaultDeployConfig())
	if err != nil {
		panic(err)
	}
	ilmBefore, _ := dep.Net().TotalILM()
	sigBefore := dep.Net().Stats().SignalingMsgs

	e, _ := g.FindEdge(0, 1)
	dep.FailLink(e)

	pkt, err := dep.Net().SendIP(0, 1)
	if err != nil {
		panic(err)
	}
	ilmAfter, _ := dep.Net().TotalILM()
	fmt.Println("delivered in hops:", pkt.Hops)
	fmt.Println("ILM unchanged:", ilmBefore == ilmAfter)
	fmt.Println("signaling messages:", dep.Net().Stats().SignalingMsgs-sigBefore)
	// Output:
	// delivered in hops: 2
	// ILM unchanged: true
	// signaling messages: 0
}

// The exact decomposition machinery on the paper's Figure-2 comb: k
// failures force exactly k+1 components.
func ExampleDecomposeGreedy() {
	g := rbpc.NewGraph(5)
	// Spine 0-1-2 with a tooth over each spine edge.
	s1 := g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 3, 1) // tooth 3 over (0,1)
	g.AddEdge(3, 1, 1)
	g.AddEdge(1, 4, 1) // tooth 4 over (1,2)
	g.AddEdge(4, 2, 1)

	base := rbpc.AllShortestPaths(g)
	backup, _ := rbpc.ShortestPath(rbpc.FailEdges(g, s1), 0, 2)
	dec := rbpc.DecomposeGreedy(base, backup)
	fmt.Println("k=1 components:", dec.Len())
	// Output:
	// k=1 components: 2
}

// Static table verification: the audit proves the restoration left the
// network loop-free and fully routed.
func ExampleVerifyTables() {
	g := rbpc.NewRing(5)
	dep, err := rbpc.NewDeployment(g, rbpc.DefaultDeployConfig())
	if err != nil {
		panic(err)
	}
	e, _ := g.FindEdge(0, 1)
	dep.FailLink(e)

	rep := rbpc.VerifyTables(dep.Net())
	fmt.Println("clean:", rep.Clean())
	fmt.Println("loop-free:", rep.LoopFree())
	// Output:
	// clean: true
	// loop-free: true
}

// Traffic classes: a gold class confined to fast links restores within
// its own subnet.
func ExampleNewTrafficClasses() {
	g := rbpc.NewRing(6) // fast ring
	g.AddEdge(0, 3, 5)   // slow chord

	classes := rbpc.NewTrafficClasses(g)
	if _, err := classes.AddClass("gold", func(e rbpc.Edge) bool { return e.W == 1 }, rbpc.StrategyGreedy); err != nil {
		panic(err)
	}
	p, _ := classes.Route("gold", 0, 3)
	plan, err := classes.Restore("gold", []rbpc.EdgeID{p.Edges[0]}, 0, 3)
	if err != nil {
		panic(err)
	}
	slow := 0
	for _, e := range plan.Backup.Edges {
		if g.Edge(e).W > 1 {
			slow++
		}
	}
	fmt.Println("slow links used:", slow)
	// Output:
	// slow links used: 0
}
