package rbpc

import (
	"io"

	"rbpc/internal/eval"
	"rbpc/internal/failure"
	"rbpc/internal/topology"
)

// Experiment reproduction entry points: one per table/figure of the
// paper's evaluation. The underlying topologies are synthetic stand-ins
// matching the published statistics (see DESIGN.md for the substitution
// rationale); set RBPC_FULL=1 to build them at full paper scale.

// EvalNetwork is a named evaluation topology with its sampling budget.
type EvalNetwork = eval.Network

// EvalScale configures stand-in sizes.
type EvalScale = eval.Scale

// FailureKind is a failure class (one per Table 2 block).
type FailureKind = failure.Kind

// The four failure classes of Table 2.
const (
	SingleLink   = failure.SingleLink
	DoubleLink   = failure.DoubleLink
	SingleRouter = failure.SingleRouter
	DoubleRouter = failure.DoubleRouter
)

// EvalNetworks builds the paper's four evaluation rows (weighted ISP,
// unweighted ISP, Internet, AS graph) at the given scale.
func EvalNetworks(sc EvalScale) []EvalNetwork { return eval.PaperNetworks(sc) }

// DefaultEvalScale keeps the big stand-ins CI-sized; FullEvalScale
// reproduces the paper's Table 1 sizes; EvalScaleFromEnv picks full scale
// when RBPC_FULL=1.
func DefaultEvalScale() EvalScale { return eval.DefaultScale() }
func FullEvalScale() EvalScale    { return eval.FullScale() }
func EvalScaleFromEnv() EvalScale { return eval.ScaleFromEnv() }

// RunTable1 writes the topology statistics table.
func RunTable1(w io.Writer, nets []EvalNetwork) {
	eval.RenderTable1(w, eval.Table1(nets))
}

// RunTable2 runs all four failure classes over the networks and writes
// the restoration-quality table.
func RunTable2(w io.Writer, nets []EvalNetwork, seed int64) []eval.Table2Row {
	rows := eval.Table2All(nets, seed)
	eval.RenderTable2(w, rows)
	return rows
}

// RunTable2Row runs one network under one failure class.
func RunTable2Row(net EvalNetwork, kind FailureKind, seed int64) eval.Table2Row {
	return eval.Table2(net, kind, seed)
}

// RunTable3 computes bypass-length distributions. maxEdges > 0 samples
// that many edges on large graphs.
func RunTable3(w io.Writer, nets []EvalNetwork, maxEdges int, seed int64) []eval.Table3Result {
	var results []eval.Table3Result
	seen := make(map[string]bool)
	for _, n := range nets {
		if seen[n.Name] {
			continue
		}
		seen[n.Name] = true
		results = append(results, eval.Table3(n, maxEdges, seed))
	}
	eval.RenderTable3(w, results)
	return results
}

// RunFigure10 measures local-RBPC stretch histograms on the given network
// (the paper uses the weighted ISP).
func RunFigure10(w io.Writer, net EvalNetwork, seed int64) eval.Figure10Result {
	res := eval.Figure10(net, seed)
	eval.RenderFigure10(w, res)
	return res
}

// RunAsymmetry measures how the k+1 decomposition bound fares when link
// weights become asymmetric (the directed regime the theorems exclude),
// across increasing per-direction jitter, and writes the table.
func RunAsymmetry(w io.Writer, net EvalNetwork, jitters []int, seed int64) []eval.AsymmetryResult {
	var rows []eval.AsymmetryResult
	for _, j := range jitters {
		rows = append(rows, eval.Asymmetry(net, j, seed))
	}
	eval.RenderAsymmetry(w, rows)
	return rows
}

// RunTiming measures restoration latency (mean/p95 over sampled
// single-link failures) for local RBPC, source RBPC and the LDP
// re-signaling baseline, and writes the table.
func RunTiming(w io.Writer, net EvalNetwork, trials int, seed int64) (eval.TimingResult, error) {
	res, err := eval.Timing(net, trials, seed)
	if err != nil {
		return res, err
	}
	eval.RenderTiming(w, res)
	return res, nil
}

// RunTradeoff evaluates the paper's technology trade-off (MPLS vs WDM
// vs ATM): concatenation cost against teardown-and-re-establishment
// cost on sampled failures, and writes the table.
func RunTradeoff(w io.Writer, net EvalNetwork, seed int64) []eval.TradeoffRow {
	rows := eval.Tradeoff(net, eval.DefaultTechnologies(), seed)
	eval.RenderTradeoff(w, rows)
	return rows
}

// RunKBackupComparison compares RBPC against the classic k-alternates
// baseline on the given network (coverage, stretch, pre-provisioned
// state) and writes the table.
func RunKBackupComparison(w io.Writer, net EvalNetwork, ks []int, seed int64) []eval.KBackupComparison {
	var rows []eval.KBackupComparison
	for _, k := range ks {
		for _, kind := range []FailureKind{SingleLink, DoubleLink} {
			rows = append(rows, eval.CompareKBackup(net, k, kind, seed))
		}
	}
	eval.RenderKBackup(w, rows)
	return rows
}

// EvalResults bundles a full evaluation run for JSON export.
type EvalResults = eval.Results

// Topology constructors re-exported for applications and experiments.

// NewISPTopology generates the hierarchical ISP stand-in (200 nodes, ~356
// weighted links at default config).
func NewISPTopology(seed int64) *Graph { return topology.PaperISP(seed) }

// NewASTopology generates the AS-graph stand-in at the given scale
// (1.0 = 4,746 nodes / 9,878 links).
func NewASTopology(seed int64, scale float64) *Graph { return topology.PaperAS(seed, scale) }

// NewInternetTopology generates the Internet router-graph stand-in at the
// given scale (1.0 = 40,377 nodes / 101,659 links).
func NewInternetTopology(seed int64, scale float64) *Graph {
	return topology.PaperInternet(seed, scale)
}

// UnweightedCopy returns a copy of g with all weights set to 1.
func UnweightedCopy(g *Graph) *Graph { return topology.UnitWeightCopy(g) }

// Classic generators for experiments and tests.
func NewRing(n int) *Graph          { return topology.Ring(n) }
func NewLine(n int) *Graph          { return topology.Line(n) }
func NewGrid(rows, cols int) *Graph { return topology.Grid(rows, cols) }
func NewComplete(n int) *Graph      { return topology.Complete(n) }
func NewWaxman(n int, alpha, beta float64, seed int64) *Graph {
	return topology.Waxman(n, alpha, beta, seed)
}
func NewPowerLaw(n, m int, seed int64) *Graph { return topology.BarabasiAlbert(n, m, seed) }
