// Package rbpc is a reproduction of "Restoration by Path Concatenation:
// Fast Recovery of MPLS Paths" (Afek, Bremler-Barr, Kaplan, Cohen,
// Merritt; PODC 2001): a library for restoring shortest paths after
// network failures by concatenating pre-provisioned base paths with the
// MPLS label stack, instead of signaling new LSPs.
//
// The theory (Section 3 of the paper): after k edge failures in an
// unweighted network, every new shortest path is a concatenation of at
// most k+1 original shortest paths (Theorem 1); in a weighted network, of
// at most k+1 original shortest paths interleaved with at most k single
// edges (Theorem 2); and one shortest path per pair suffices as the base
// set if ties are broken by infinitesimal padding (Theorem 3).
//
// The package surface is organized in three layers:
//
//   - Graph and shortest paths: Graph, Path, FailureView, ShortestPath,
//     NewOracle — the algorithmic substrate.
//   - Restoration planning: BaseSet constructors (AllShortestPaths,
//     OneShortestPathPerPair, ExplicitBase), NewRestorer, Decompose* —
//     computing which base paths to concatenate.
//   - MPLS deployment: NewDeployment runs a simulated MPLS network with
//     pre-provisioned LSPs, applies source-router RBPC (FEC rewrites) and
//     local RBPC (single ILM-row patches), forwards packets, and couples
//     to a link-state protocol for realistically timed hybrid restoration
//     (NewHybridDeployment).
//
// Reproductions of the paper's tables and figures live behind RunTable1,
// RunTable2, RunTable3 and RunFigure10; see also cmd/rbpc-bench.
package rbpc

import (
	"rbpc/internal/core"
	"rbpc/internal/graph"
	"rbpc/internal/paths"
	"rbpc/internal/spath"
)

// Graph is a weighted undirected multigraph with dense integer node IDs.
type Graph = graph.Graph

// Path is a walk through a graph with explicit edges.
type Path = graph.Path

// NodeID identifies a vertex.
type NodeID = graph.NodeID

// EdgeID identifies an edge; parallel edges have distinct IDs.
type EdgeID = graph.EdgeID

// Edge is one edge record.
type Edge = graph.Edge

// FailureView presents a graph with edges and/or nodes removed, without
// copying it.
type FailureView = graph.FailureView

// NewGraph returns an empty undirected graph with n nodes.
func NewGraph(n int) *Graph { return graph.New(n) }

// FailEdges returns a view of g with the given edges removed.
func FailEdges(g *Graph, edges ...EdgeID) *FailureView { return graph.FailEdges(g, edges...) }

// FailNodes returns a view of g with the given nodes (and their incident
// edges) removed.
func FailNodes(g *Graph, nodes ...NodeID) *FailureView { return graph.FailNodes(g, nodes...) }

// Fail returns a view with both edges and nodes removed.
func Fail(g *Graph, edges []EdgeID, nodes []NodeID) *FailureView {
	return graph.Fail(g, edges, nodes)
}

// ShortestPath returns a shortest path from s to d in the (possibly
// failed) view, deterministically tie-broken, and whether d is reachable.
func ShortestPath(v graph.View, s, d NodeID) (Path, bool) {
	return spath.ShortestPath(v, s, d)
}

// Oracle memoizes shortest-path trees per source.
type Oracle = spath.Oracle

// NewOracle returns a distance/path oracle over v.
func NewOracle(v graph.View) *Oracle { return spath.NewOracle(v) }

// BaseSet is a set of pre-provisioned base paths (the LSPs restoration
// concatenates). See AllShortestPaths, OneShortestPathPerPair and
// ExplicitBase.
type BaseSet = paths.Base

// ExplicitBase is a materialized base set with inverted indexes.
type ExplicitBase = paths.Explicit

// AllShortestPaths returns the implicit base set containing every
// shortest path of g — the base set of the paper's main experiments.
func AllShortestPaths(g *Graph) BaseSet { return paths.NewAllShortest(g) }

// OneShortestPathPerPair returns the Theorem-3 base set: exactly one
// shortest path per ordered pair, selected by infinitesimal padding.
func OneShortestPathPerPair(g *Graph) BaseSet { return paths.NewUniqueShortest(g) }

// NewExplicitBase returns an empty materialized base set over g.
func NewExplicitBase(g *Graph) *ExplicitBase { return paths.NewExplicit(g) }

// Decomposition is a restoration path expressed as a concatenation of
// base paths and (in the weighted case) bare edges.
type Decomposition = core.Decomposition

// Component is one piece of a Decomposition.
type Component = core.Component

// Restorer computes restoration plans; Plan is one computed restoration.
type (
	Restorer = core.Restorer
	Plan     = core.Plan
)

// Strategy selects the decomposition algorithm.
type Strategy = core.Strategy

// Decomposition strategies: greedy largest-prefix (requires a
// subpath-closed base set such as AllShortestPaths) or Dijkstra on the
// graph of surviving base paths (any base set).
const (
	StrategyGreedy = core.StrategyGreedy
	StrategySparse = core.StrategySparse
)

// ErrDisconnected is returned when a failure partitions a pair.
var ErrDisconnected = core.ErrDisconnected

// NewRestorer returns a Restorer over the given base set.
func NewRestorer(base BaseSet, strategy Strategy) *Restorer {
	return core.NewRestorer(base, strategy)
}

// DecomposeGreedy splits target into the minimum number of components
// using the greedy largest-prefix rule (binary-searched), valid for
// subpath-closed base sets.
func DecomposeGreedy(base BaseSet, target Path) Decomposition {
	return core.DecomposeGreedy(base, target)
}

// DecomposeSparse finds a minimum-cost restoration as a concatenation of
// surviving base paths and edges, for any base set.
func DecomposeSparse(base BaseSet, fv *FailureView, s, d NodeID) (Decomposition, bool) {
	return core.DecomposeSparse(base, fv, s, d)
}
