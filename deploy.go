package rbpc

import (
	"io"

	"rbpc/internal/graph"
	"rbpc/internal/ldp"
	"rbpc/internal/mpls"
	"rbpc/internal/ospf"
	rbpcint "rbpc/internal/rbpc"
	"rbpc/internal/scenario"
	"rbpc/internal/sim"
	"rbpc/internal/trace"
	"rbpc/internal/verify"
)

// Deployment is a running RBPC installation over a simulated MPLS
// network: base LSPs provisioned, FEC tables populated, ready to fail
// links and restore by concatenation.
type Deployment = rbpcint.System

// DeployConfig controls pre-provisioning (see DefaultDeployConfig).
type DeployConfig = rbpcint.Config

// Pair is an ordered source-destination pair.
type Pair = rbpcint.Pair

// LocalScheme selects the local-RBPC variant.
type LocalScheme = rbpcint.LocalScheme

// Local RBPC variants (Section 4.2 of the paper).
const (
	EndRoute   = rbpcint.EndRoute
	EdgeBypass = rbpcint.EdgeBypass
)

// DefaultDeployConfig provisions the subpath closure and per-edge LSPs:
// restoration then never signals.
func DefaultDeployConfig() DeployConfig { return rbpcint.DefaultConfig() }

// NewDeployment provisions a full RBPC deployment over g.
func NewDeployment(g *Graph, cfg DeployConfig) (*Deployment, error) {
	return rbpcint.NewSystem(g, cfg)
}

// MPLS plane types re-exported for packet-level inspection.
type (
	// MPLSNetwork is the simulated forwarding plane.
	MPLSNetwork = mpls.Network
	// LSP is an established label-switched path.
	LSP = mpls.LSP
	// Label is an MPLS label (per-router label space).
	Label = mpls.Label
	// Packet is a labeled packet with its stack and trace.
	Packet = mpls.Packet
)

// NewMPLSNetwork builds a bare MPLS network over g (no LSPs).
func NewMPLSNetwork(g *Graph) *MPLSNetwork { return mpls.NewNetwork(g) }

// Engine is a deterministic discrete-event engine (simulated time in
// milliseconds).
type Engine = sim.Engine

// LinkState is the OSPF-like flooding substrate.
type LinkState = ospf.Protocol

// LinkStateConfig sets detection/propagation/processing delays.
type LinkStateConfig = ospf.Config

// DefaultLinkStateConfig uses 10ms detection, 1ms links, 0.1ms processing.
func DefaultLinkStateConfig() LinkStateConfig { return ospf.DefaultConfig() }

// NewLinkState builds the link-state protocol over g on eng.
func NewLinkState(g *Graph, eng *Engine, cfg LinkStateConfig) *LinkState {
	return ospf.New(g, eng, cfg)
}

// HybridDeployment couples a Deployment to the link-state protocol: the
// router adjacent to a failure patches immediately; each source router
// re-optimizes when the flood reaches it.
type HybridDeployment = rbpcint.Hybrid

// NewHybridDeployment wires dep to a link-state instance on the same
// engine.
func NewHybridDeployment(dep *Deployment, proto *LinkState, eng *Engine, scheme LocalScheme) *HybridDeployment {
	return rbpcint.NewHybrid(dep, proto, eng, scheme)
}

// Baseline is conventional teardown-and-resignal restoration, for
// comparison.
type Baseline = rbpcint.Baseline

// SignalingConfig sets LDP message timing for the baseline.
type SignalingConfig = ldp.Config

// DefaultSignalingConfig uses 1ms links and 0.5ms processing.
func DefaultSignalingConfig() SignalingConfig { return ldp.DefaultConfig() }

// NewBaseline provisions conventional per-pair LSPs restored via LDP
// re-signaling.
func NewBaseline(g *Graph, eng *Engine, cfg SignalingConfig) (*Baseline, error) {
	return rbpcint.NewBaseline(g, eng, cfg)
}

// Connected reports whether all usable nodes of the view are mutually
// reachable.
func Connected(v graph.View) bool { return graph.Connected(v) }

// Table verification: static auditing of the forwarding state, with an
// exact loop detector (the data plane's TTL only truncates loops).

// VerifyReport aggregates a whole-network table audit.
type VerifyReport = verify.Report

// VerifyFinding is one non-delivered route.
type VerifyFinding = verify.Finding

// VerifyTables walks every FEC entry of every router through the ILM
// rows and classifies each route: delivered, looping, blackholed,
// crossing a dead link, or misdelivered.
func VerifyTables(net *MPLSNetwork) VerifyReport { return verify.CheckAll(net) }

// Scripted scenarios: reproducible failure timelines from text files.

// ScenarioOp is one parsed script operation.
type ScenarioOp = scenario.Op

// ScenarioEvent is one logged outcome of a scripted run.
type ScenarioEvent = scenario.Event

// ParseScenario reads the line-oriented scenario DSL
// ("at <ms> fail-link <id>", "at <ms> probe <src> <dst>", ...).
func ParseScenario(r io.Reader) ([]ScenarioOp, error) { return scenario.Parse(r) }

// RunScenario executes a parsed script against a hybrid deployment on
// its engine and returns the event log.
func RunScenario(h *HybridDeployment, eng *Engine, ops []ScenarioOp) ([]ScenarioEvent, error) {
	return scenario.Run(h, eng, ops)
}

// TraceResult is a per-hop label-operation trace of one route.
type TraceResult = trace.Result

// TraceRoute walks the installed route for (src, dst), recording every
// label operation — the reproduction's traceroute.
func TraceRoute(net *MPLSNetwork, src, dst NodeID) TraceResult {
	return trace.Route(net, src, dst)
}

// WriteTrace renders a trace for humans.
func WriteTrace(w io.Writer, net *MPLSNetwork, res TraceResult) {
	trace.Write(w, net, res)
}
